//! The query controller (§7): mini-batch driving, result collection,
//! variation-range monitoring, checkpointing, and failure recovery.
//!
//! Per §7, "the query controller partitions the input data into
//! mini-batches, schedules the delta update query on each mini-batch and
//! collects query results. The controller also monitors the correctness of
//! all the variation ranges, and schedules recomputing jobs to recover the
//! query result when a failure is detected."
//!
//! Recovery implements §5.1: operator state (and the registry) is
//! checkpointed every `checkpoint_interval` batches; when a range-integrity
//! failure at batch `i` names a recovery point `j`, the controller restores
//! the newest checkpoint ≤ `j` and replays batches `j+1..=i` as one combined
//! delta (the replayed observation is then covered by `R_j` by choice of
//! `j`, so the replay passes the integrity check — Theorem 1's recovery
//! argument).

use crate::config::IolapConfig;
use crate::faults::FaultInjector;
use crate::metrics::{Metrics, Span};
use crate::ops::{BatchCtx, BatchStats, OnlineOp};
use crate::registry::AggRegistry;
use crate::rewriter::{rewrite, OnlineQuery, RewriteError};
use crate::sink::{QueryResult, Sink};
use crate::trace::{self_time_by_name, SpanId, Tracer, NO_BATCH};
use iolap_bootstrap::RangeOutcome;
use iolap_engine::{plan_sql, EngineError, FunctionRegistry, PlanError, PlannedQuery};
use iolap_relation::{AggRef, BatchedRelation, Catalog, Relation, Row};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Signature of an installable static plan verifier: `Err` carries the
/// rendered violation report.
pub type PlanVerifier = fn(&OnlineQuery) -> Result<(), String>;

/// Process-wide static plan verifier hook.
///
/// The verifier lives in `iolap-analyze`, which depends on this crate — a
/// direct call would be a dependency cycle, so the analyzer *installs* its
/// check here and the driver consults it (in debug builds only) on every
/// rewritten plan before batch 0.
static PLAN_VERIFIER: OnceLock<PlanVerifier> = OnceLock::new();

/// Install a static plan verifier, run on every rewritten online query in
/// debug builds before any batch is processed. A verifier returning
/// `Err(report)` fails driver construction with [`DriverError::Setup`].
/// Installation is process-wide and idempotent (first install wins).
pub fn install_plan_verifier(verifier: PlanVerifier) {
    let _ = PLAN_VERIFIER.set(verifier);
}

/// Driver errors.
#[derive(Debug)]
pub enum DriverError {
    /// Planning failed.
    Plan(PlanError),
    /// Online rewriting failed.
    Rewrite(RewriteError),
    /// Execution failed.
    Engine(EngineError),
    /// Setup problem (unknown streamed table, bad config).
    Setup(String),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Plan(e) => write!(f, "{e}"),
            DriverError::Rewrite(e) => write!(f, "{e}"),
            DriverError::Engine(e) => write!(f, "{e}"),
            DriverError::Setup(m) => write!(f, "setup error: {m}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<PlanError> for DriverError {
    fn from(e: PlanError) -> Self {
        DriverError::Plan(e)
    }
}
impl From<RewriteError> for DriverError {
    fn from(e: RewriteError) -> Self {
        DriverError::Rewrite(e)
    }
}
impl From<EngineError> for DriverError {
    fn from(e: EngineError) -> Self {
        DriverError::Engine(e)
    }
}

/// Everything reported for one processed mini-batch.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// 0-based batch index.
    pub batch: usize,
    /// Partial query result `Q(D_i, m_i)` with error estimates.
    pub result: QueryResult,
    /// Instrumentation for this batch (including any replay work).
    pub stats: BatchStats,
    /// Named per-operator counters and spans recorded while processing
    /// this batch (including any replay work). See [`crate::metrics`].
    pub metrics: Metrics,
    /// Wall-clock time spent processing this batch.
    pub elapsed: Duration,
    /// Fraction of the streamed relation processed so far.
    pub fraction: f64,
    /// Whether a failure-recovery replay happened in this batch.
    pub recovered: bool,
    /// Join-state bytes after this batch.
    pub state_bytes_join: usize,
    /// Non-join operator state bytes after this batch.
    pub state_bytes_other: usize,
    /// Exclusive per-span self-time for this batch, `(span name, ns)` in
    /// name order, derived from the trace span tree (nested spans do not
    /// double-count — unlike the deprecated `Metrics::total_span_ns`
    /// rollup). Empty when tracing is off.
    pub self_time_ns: Vec<(&'static str, u64)>,
}

/// Range-integrity failures an aggregate cell may cause before it is
/// permanently barred from pruning. The first failure buys a replay and a
/// fresh range (a one-off tail event on stationary data should not cost
/// pruning forever); a second failure marks the range genuinely unstable.
const MAX_REF_FAILURES: usize = 2;

/// One durable-log event re-applied during a session resume, in log order.
///
/// The durable layer (`iolap-server`/`iolap-store`) records what the
/// driver *did* — batches processed, rows appended, checkpoints saved —
/// and resume rebuilds a fresh driver from the original request and walks
/// these events forward. Re-derivation over re-materialisation: the
/// driver is deterministic, so replaying the events reproduces every
/// quarantine decision, failure count, and published result byte-for-byte
/// (modulo wall-clock), while the logged checkpoint digests verify that
/// the re-derived state matches what the dead process had.
#[derive(Clone, Debug)]
pub enum ReplayEvent {
    /// Re-run the mini-batch at this 0-based index (a spilled report).
    Batch(usize),
    /// Re-apply appended rows at this position in the stream.
    Append(Relation),
    /// Check the re-derived checkpoint after `batch` against the digest
    /// the log recorded at save time. A mismatch is counted stale (the
    /// on-disk record lied — bit rot or an injected `StaleManifest`), not
    /// fatal: the re-derived state is the ground truth.
    Checkpoint {
        /// Batch the checkpoint was saved after.
        batch: usize,
        /// Digest the durable log recorded for it.
        digest: u64,
    },
}

/// What [`IolapDriver::resume_replay`] did, with the regenerated reports.
#[derive(Debug, Default)]
pub struct ResumeOutcome {
    /// Reports regenerated by replaying the logged batches, in order.
    /// Deterministic modulo `elapsed` — byte-identical to the lost
    /// originals under any wall-clock-masking comparison.
    pub reports: Vec<BatchReport>,
    /// Batches re-run.
    pub replayed_batches: usize,
    /// Append events re-applied.
    pub reapplied_appends: usize,
    /// Logged checkpoint digests that disagreed with the re-derived state.
    pub stale_digests: usize,
}

#[derive(Clone)]
struct Checkpoint {
    batch: usize, // state is AFTER this batch (usize::MAX = initial)
    root: OnlineOp,
    sink: Sink,
    registry: AggRegistry,
    /// Integrity digest recorded at save time; a mismatch on restore marks
    /// the checkpoint unusable (bit rot, torn write — or an injected
    /// `CorruptCheckpoint` fault) and recovery falls back to an older one.
    digest: u64,
    /// Approximate state bytes cloned into this checkpoint (retention
    /// accounting; `0` for the pristine initial checkpoint).
    bytes: usize,
}

impl Checkpoint {
    /// Structural fingerprint over content-derived sizes. Not a
    /// cryptographic checksum — cheap enough to verify on every restore,
    /// strong enough to catch the simulated corruption model (a damaged
    /// digest) and gross clone/restore bugs.
    fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.batch.hash(&mut h);
        let (join_bytes, other_bytes) = self.root.state_bytes();
        join_bytes.hash(&mut h);
        other_bytes.hash(&mut h);
        self.registry.len().hash(&mut h);
        self.registry.published_bytes().hash(&mut h);
        self.registry.approx_bytes().hash(&mut h);
        self.sink.certain_len().hash(&mut h);
        h.finish()
    }
}

/// The iOLAP incremental query driver.
pub struct IolapDriver {
    config: IolapConfig,
    catalog: Catalog,
    stream_table: String,
    batches: BatchedRelation,
    root: OnlineOp,
    sink: Sink,
    registry: AggRegistry,
    next_batch: usize,
    checkpoints: Vec<Checkpoint>,
    total_failures: usize,
    last_published: usize,
    /// Quarantine set: survives the checkpoint restore (a restored
    /// registry is re-seeded from it) so the replay cannot reuse the
    /// violated range. First-time offenders are re-admitted once the
    /// replay completes and their tracker holds a fresh range (§5.1);
    /// repeat offenders (see [`MAX_REF_FAILURES`]) stay quarantined so
    /// adversarial drift cannot force a replay per batch.
    quarantined: std::collections::HashSet<iolap_relation::AggRef>,
    /// Range-integrity failures per aggregate cell, driving the
    /// re-admission policy above.
    failure_counts: std::collections::HashMap<iolap_relation::AggRef, usize>,
    /// Metrics accumulated across every processed batch (monotone, even
    /// across checkpoint restores — replay work adds, never resets).
    cumulative_metrics: Metrics,
    /// Setup-time metrics (the rewrite span) waiting to be folded into the
    /// first batch's report.
    pending_metrics: Metrics,
    /// Registry deref count at the last per-batch snapshot.
    last_derefs: u64,
    /// Armed fault-injection hooks; `None` (the production default) unless
    /// the config carries a `FaultPlan`.
    faults: Option<Arc<FaultInjector>>,
    /// Causal trace journal; `None` (the production default) unless the
    /// config enables a [`crate::trace::TraceMode`]. Shared with the
    /// registry and the fault injector so their events land in the same
    /// journal — and survive a panicking batch.
    tracer: Option<Arc<Tracer>>,
    /// Root "query" span all batch spans hang off.
    query_span: SpanId,
    /// Shard pool for scale-out fold dispatch; `None` (the production
    /// default) folds in-process. Attached post-construction via
    /// [`IolapDriver::set_shard_exec`] — the pool outlives checkpoints and
    /// is never part of restored state.
    shards: Option<Arc<dyn crate::shard::ShardExec>>,
}

impl IolapDriver {
    /// Compile and prepare a SQL query for incremental execution, streaming
    /// `stream_table` in `config.num_batches` mini-batches.
    pub fn from_sql(
        sql: &str,
        catalog: &Catalog,
        registry: &FunctionRegistry,
        stream_table: &str,
        config: IolapConfig,
    ) -> Result<Self, DriverError> {
        let pq = plan_sql(sql, catalog, registry)?;
        Self::from_plan(&pq, catalog, stream_table, config)
    }

    /// Prepare an already-planned query.
    pub fn from_plan(
        pq: &PlannedQuery,
        catalog: &Catalog,
        stream_table: &str,
        config: IolapConfig,
    ) -> Result<Self, DriverError> {
        let stream_table = stream_table.to_ascii_lowercase();
        if config.num_batches == 0 {
            return Err(DriverError::Setup("num_batches must be at least 1".into()));
        }
        let rel = catalog
            .get(&stream_table)
            .map_err(|e| DriverError::Setup(e.to_string()))?;
        let streamed: HashSet<String> = [stream_table.clone()].into();
        let mut pending_metrics = Metrics::new();
        let rewrite_span = Span::start();
        let oq = rewrite(pq, &streamed)?;
        rewrite_span.stop(&mut pending_metrics, "rewrite.ns");
        if cfg!(debug_assertions) {
            if let Some(verifier) = PLAN_VERIFIER.get() {
                verifier(&oq)
                    .map_err(|m| DriverError::Setup(format!("plan verification failed:\n{m}")))?;
            }
        }
        let OnlineQuery { root, sink, .. } = oq;
        let batches = BatchedRelation::partition(
            &rel,
            config.num_batches,
            config.seed,
            config.partition_mode,
        );
        let mut registry = AggRegistry::new();
        let tracer = Tracer::from_mode(config.trace_mode).map(Arc::new);
        let query_span = match &tracer {
            Some(t) => t.begin("query", NO_BATCH, SpanId::NONE),
            None => SpanId::NONE,
        };
        if let Some(t) = &tracer {
            registry.set_tracer(t.clone());
        }
        let faults = config.fault_plan.clone().map(|plan| {
            let mut inj = FaultInjector::new(plan);
            if let Some(t) = &tracer {
                inj = inj.with_tracer(t.clone());
            }
            Arc::new(inj)
        });
        if let Some(f) = &faults {
            registry.set_fault_injector(f.clone());
        }
        let mut initial = Checkpoint {
            batch: usize::MAX,
            root: root.clone(),
            sink: sink.clone(),
            registry: registry.clone(),
            digest: 0,
            bytes: 0,
        };
        initial.digest = initial.fingerprint();
        Ok(IolapDriver {
            config,
            catalog: catalog.clone(),
            stream_table,
            batches,
            root,
            sink,
            registry,
            next_batch: 0,
            checkpoints: vec![initial],
            total_failures: 0,
            last_published: 0,
            quarantined: std::collections::HashSet::new(),
            failure_counts: std::collections::HashMap::new(),
            cumulative_metrics: Metrics::new(),
            pending_metrics,
            last_derefs: 0,
            faults,
            tracer,
            query_span,
            shards: None,
        })
    }

    /// Attach a shard pool: aggregate folds dispatch across it from the
    /// next batch on. Results stay byte-identical to the un-sharded run
    /// (see [`crate::shard`] for the merge-order discipline).
    pub fn set_shard_exec(&mut self, exec: Arc<dyn crate::shard::ShardExec>) {
        self.shards = Some(exec);
    }

    /// Cumulative partial-state bytes shipped by the attached shard pool
    /// (0 without one) — the paper's "data shipped" axis.
    pub fn shard_bytes_shipped(&self) -> u64 {
        self.shards.as_ref().map_or(0, |s| s.bytes_shipped())
    }

    /// Per-worker counter snapshots from the attached shard pool (empty
    /// without one, or for pools that report nothing).
    pub fn shard_worker_stats(&self) -> Vec<crate::shard::ShardWorkerStats> {
        self.shards
            .as_ref()
            .map_or_else(Vec::new, |s| s.worker_stats())
    }

    /// The configuration this driver was built with (the serving layer
    /// reads the seed for its deterministic scheduling tie-break).
    pub fn config(&self) -> &IolapConfig {
        &self.config
    }

    /// Number of mini-batches.
    pub fn num_batches(&self) -> usize {
        self.batches.num_batches()
    }

    /// Batches processed so far.
    pub fn batches_done(&self) -> usize {
        self.next_batch
    }

    /// Total failure-recovery events so far.
    pub fn total_failures(&self) -> usize {
        self.total_failures
    }

    /// The registry (instrumentation / tests).
    pub fn registry(&self) -> &AggRegistry {
        &self.registry
    }

    /// Metrics accumulated across all batches processed so far. Monotone
    /// non-decreasing, including across failure recovery: a checkpoint
    /// restore rolls back operator state, never the observability record.
    pub fn metrics(&self) -> &Metrics {
        &self.cumulative_metrics
    }

    /// Process the next mini-batch; `None` when all data is consumed.
    pub fn step(&mut self) -> Option<Result<BatchReport, DriverError>> {
        if self.next_batch >= self.batches.num_batches() {
            return None;
        }
        let i = self.next_batch;
        self.next_batch += 1;
        Some(self.run_batch(i))
    }

    /// Run every remaining batch, returning all reports.
    pub fn run_to_completion(&mut self) -> Result<Vec<BatchReport>, DriverError> {
        let mut out = Vec::new();
        while let Some(r) = self.step() {
            out.push(r?);
        }
        Ok(out)
    }

    /// The streamed table this driver consumes (lowercased), used by the
    /// serving layer to route `{"op":"append"}` rows to sessions.
    pub fn stream_table(&self) -> &str {
        &self.stream_table
    }

    /// Schema of the streamed relation — the shape appended rows must fit.
    pub fn stream_schema(&self) -> &iolap_relation::Schema {
        self.batches.batch(0).schema()
    }

    /// The armed fault injector, when the config carries a `FaultPlan`.
    /// The durable layer consults it for torn-write / truncated-segment /
    /// stale-manifest hooks; `None` in production.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// Continuous ingest: extend the stream with `rel` as one new
    /// mini-batch, picked up by the next `step`. Works mid-stream and
    /// after the original partition is exhausted — late arrival simply
    /// grows the totals, so earlier prefixes scale up (the multiplicity
    /// semantics of §2) and the final answer is exact again once the new
    /// batch is consumed (Theorem 1). Returns the new batch's 0-based
    /// index.
    pub fn append_rows(&mut self, rel: Relation) -> Result<usize, DriverError> {
        if rel.is_empty() {
            return Err(DriverError::Setup(
                "append carries no rows (an empty mini-batch has no information)".into(),
            ));
        }
        if rel.schema() != self.stream_schema() {
            return Err(DriverError::Setup(format!(
                "append schema does not match streamed table '{}'",
                self.stream_table
            )));
        }
        let index = self.batches.num_batches();
        self.batches.push_batch(rel);
        if let Some(t) = &self.tracer {
            t.instant(
                "stream.append",
                index,
                self.query_span,
                self.batches.batch(index).len() as u64,
                format!("table {}", self.stream_table),
            );
        }
        Ok(index)
    }

    /// Digest and state bytes of the retained checkpoint saved after
    /// `batch`, when it is still retained (pruning may have dropped it —
    /// that is bounded retention, not corruption).
    pub fn checkpoint_for(&self, batch: usize) -> Option<(u64, usize)> {
        self.checkpoints
            .iter()
            .rev()
            .find(|c| c.batch == batch)
            .map(|c| (c.digest, c.bytes))
    }

    /// Resume a session from its durable log: walk `events` forward,
    /// re-running batches, re-applying appends at their original stream
    /// positions, and verifying re-derived checkpoints against the logged
    /// digests. Must be called on a freshly built driver (same request,
    /// same config/seed); the deterministic engine then reproduces the
    /// dead process's trajectory exactly, which the §5.1 machinery — not
    /// this method — keeps correct under mid-replay failures.
    pub fn resume_replay(&mut self, events: &[ReplayEvent]) -> Result<ResumeOutcome, DriverError> {
        let mut out = ResumeOutcome::default();
        for ev in events {
            match ev {
                ReplayEvent::Batch(logged) => {
                    if *logged != self.next_batch {
                        return Err(DriverError::Setup(format!(
                            "resume log out of order: driver at batch {}, log says {logged}",
                            self.next_batch
                        )));
                    }
                    match self.step() {
                        Some(Ok(report)) => {
                            out.replayed_batches += 1;
                            out.reports.push(report);
                        }
                        Some(Err(e)) => return Err(e),
                        None => {
                            return Err(DriverError::Setup(
                                "resume log replays past the end of the stream".into(),
                            ))
                        }
                    }
                }
                ReplayEvent::Append(rel) => {
                    self.append_rows(rel.clone())?;
                    out.reapplied_appends += 1;
                }
                ReplayEvent::Checkpoint { batch, digest } => {
                    // A pruned checkpoint is silently fine; a retained one
                    // whose digest disagrees means the on-disk record is
                    // stale — count it and trust the re-derived state.
                    if let Some((live, _)) = self.checkpoint_for(*batch) {
                        if live != *digest {
                            out.stale_digests += 1;
                            self.cumulative_metrics.add("resume.stale_digests", 1);
                        }
                    }
                }
            }
        }
        self.cumulative_metrics
            .add("resume.replayed_batches", out.replayed_batches as u64);
        self.cumulative_metrics
            .add("resume.reapplied_appends", out.reapplied_appends as u64);
        Ok(out)
    }

    /// Dump the flight recorder to stderr before surfacing a hard engine
    /// error — the postmortem the ring buffer exists for.
    fn dump_on_error(&self, e: DriverError) -> DriverError {
        if let Some(t) = &self.tracer {
            t.instant(
                "engine_error",
                self.next_batch.saturating_sub(1),
                self.query_span,
                0,
                e.to_string(),
            );
            eprintln!("{}", t.flight_dump());
        }
        e
    }

    fn run_batch(&mut self, i: usize) -> Result<BatchReport, DriverError> {
        let start = Span::start();
        let mut stats = BatchStats::default();
        let mut metrics = std::mem::take(&mut self.pending_metrics);
        let mut recovered = false;
        let trace_from_seq = self.tracer.as_ref().map(|t| t.recorded()).unwrap_or(0);
        let batch_span = match &self.tracer {
            Some(t) => t.begin("batch", i, self.query_span),
            None => SpanId::NONE,
        };
        if let Some(f) = &self.faults {
            f.begin_batch(i);
        }

        // Processing + hardened §5.1 failure handling. Pass 0 runs the
        // fresh delta; a recovery pass restores a checkpoint and replays
        // the suffix as one combined delta. Crucially, each pass's
        // outcomes re-enter the examination, so a range failure detected
        // *during a replay* triggers another recovery instead of being
        // dropped — and an execution error (a panicking worker, a poisoned
        // deref) is treated as a transient batch failure that buys a
        // restore + replay rather than aborting the query.
        //
        // Termination: each failure pass permanently consumes a quarantine
        // credit (at most MAX_REF_FAILURES per attribute), error passes
        // are bounded by `max_recovery_depth`, and past the depth budget
        // the controller degrades: current offenders are barred from
        // pruning for good and the whole retained prefix is recomputed
        // HDA-style from the initial checkpoint.
        let depth_cap = self.config.max_recovery_depth.max(1);
        let mut depth = 0usize;
        let mut replaying = false;
        let mut work = self.batches.batch(i).clone();
        loop {
            let pass_span = Span::start();
            let attempt = self.process_delta(i, &work, &mut stats, &mut metrics, batch_span);
            if replaying {
                pass_span.stop(&mut metrics, "recovery.replay_ns");
            }
            let mut outcomes = match attempt {
                Ok(o) => o,
                Err(e) => {
                    // Operator state may be half-updated; roll it back and
                    // replay. Bounded: a persistent error is genuine and
                    // must surface.
                    depth += 1;
                    if depth > depth_cap {
                        return Err(self.dump_on_error(e));
                    }
                    if let Some(t) = &self.tracer {
                        t.instant(
                            "recovery.error_replay",
                            i,
                            batch_span,
                            depth as u64,
                            e.to_string(),
                        );
                    }
                    metrics.add("recovery.error_replays", 1);
                    recovered = true;
                    let restore_span = Span::start();
                    self.restore_checkpoint(i as isize - 1, &mut metrics)?;
                    self.reseed_quarantine();
                    restore_span.stop(&mut metrics, "recovery.restore_ns");
                    let replay_start = self.restored_batch(i as isize - 1);
                    work = self.combined_delta(replay_start, i);
                    metrics.add("recovery.replays", 1);
                    metrics.add("recovery.replayed_rows", work.len() as u64);
                    if let Some(t) = &self.tracer {
                        t.instant(
                            "recovery.replay",
                            i,
                            batch_span,
                            work.len() as u64,
                            format!("replay batches {replay_start}..={i}"),
                        );
                    }
                    replaying = true;
                    continue;
                }
            };
            if replaying {
                // The replay re-published the failed aggregates, so their
                // trackers hold fresh ranges covering the observed trials.
                // Re-admit first-time offenders — permanently barring an
                // attribute would degenerate single-predicate queries to
                // full prefix recomputation (HDA behaviour) after one
                // failure. Repeat offenders stay quarantined: their range
                // is genuinely unstable and each re-admission would buy
                // another full replay. Lifting *before* examining this
                // pass's outcomes is what lets a mid-replay failure of a
                // re-admitted attribute count as a fresh offense below.
                self.lift_quarantine();
            }
            self.apply_forced_failures(i, &mut outcomes);
            let Some(j) = self.examine_failures(&outcomes) else {
                break;
            };
            if let Some(t) = &self.tracer {
                t.instant(
                    "range.failure",
                    i,
                    batch_span,
                    outcomes.len() as u64,
                    format!("recovery target j={j}"),
                );
            }
            recovered = true;
            self.total_failures += 1;
            stats.failures = stats.failures.max(1);
            depth += 1;
            if replaying {
                metrics.add("recovery.cascades", 1);
                if let Some(t) = &self.tracer {
                    t.instant(
                        "recovery.cascade",
                        i,
                        batch_span,
                        depth as u64,
                        format!("cascade depth {depth}"),
                    );
                }
            }
            let target = if depth > depth_cap {
                // Graceful degradation: bar the offenders for good and
                // recompute the whole retained prefix from the initial
                // checkpoint (HDA-style).
                metrics.add("recovery.degraded", 1);
                if let Some(t) = &self.tracer {
                    t.instant("recovery.degraded", i, batch_span, depth as u64, "");
                }
                self.bar_quarantined_offenders();
                -1
            } else {
                j
            };
            let restore_span = Span::start();
            self.restore_checkpoint(target, &mut metrics)?;
            self.reseed_quarantine();
            restore_span.stop(&mut metrics, "recovery.restore_ns");
            let replay_start = self.restored_batch(target);
            work = self.combined_delta(replay_start, i);
            metrics.add("recovery.replays", 1);
            metrics.add("recovery.replayed_rows", work.len() as u64);
            if let Some(t) = &self.tracer {
                t.instant(
                    "recovery.replay",
                    i,
                    batch_span,
                    work.len() as u64,
                    format!("replay batches {replay_start}..={i} (target {target})"),
                );
            }
            replaying = true;
        }

        // Checkpoint for future recovery, under bounded retention.
        if (i + 1).is_multiple_of(self.config.checkpoint_interval.max(1)) {
            let dropped = match &self.faults {
                Some(f) => f.inject_checkpoint_drop(i),
                None => false,
            };
            if dropped {
                // Injected lost write: recovery must cope with the gap by
                // falling back to an older checkpoint.
                metrics.add("ckpt.dropped", 1);
                if let Some(t) = &self.tracer {
                    t.instant("ckpt.drop", i, batch_span, 0, "");
                }
            } else {
                let save_span = Span::start();
                let (join_bytes, other_bytes) = self.root.state_bytes();
                let bytes = join_bytes + other_bytes + self.registry.approx_bytes();
                let mut cp = Checkpoint {
                    batch: i,
                    root: self.root.clone(),
                    sink: self.sink.clone(),
                    registry: self.registry.clone(),
                    digest: 0,
                    bytes,
                };
                cp.digest = cp.fingerprint();
                if matches!(&self.faults, Some(f) if f.inject_checkpoint_corruption(i)) {
                    // Injected bit rot: damage the digest so a future
                    // restore detects the mismatch and skips this save.
                    cp.digest = !cp.digest;
                }
                self.checkpoints.push(cp);
                save_span.stop(&mut metrics, "ckpt.save_ns");
                if let Some(t) = &self.tracer {
                    t.instant("ckpt.save", i, batch_span, bytes as u64, "");
                }
                metrics.add("ckpt.saves", 1);
                metrics.add("ckpt.clone_bytes", bytes as u64);
                self.prune_checkpoints(i, &mut metrics);
                metrics.add("ckpt.retained", self.checkpoints.len() as u64);
                let retained_bytes: usize = self.checkpoints.iter().map(|c| c.bytes).sum();
                metrics.add("ckpt.retained_bytes", retained_bytes as u64);
            }
        }

        let (state_bytes_join, state_bytes_other) = self.root.state_bytes();
        let publish_span = Span::start();
        // Publish is pure over `(&sink, &registry)`, so a panic mid-render
        // (a poisoned deref that survived to the read path) leaves no state
        // to roll back — a bounded retry re-renders from intact state.
        let mut publish_retries = 0usize;
        let result = loop {
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.sink.publish_traced(
                    &self.registry,
                    self.batches.scale_after(i),
                    self.config.trials,
                    self.config.confidence,
                    self.tracer.as_deref(),
                    i,
                    batch_span,
                )
            }));
            match attempt {
                Ok(r) => break r,
                Err(payload) => {
                    publish_retries += 1;
                    if publish_retries > depth_cap {
                        return Err(self.dump_on_error(DriverError::Engine(EngineError::Plan(
                            format!(
                                "publish panicked: {}",
                                crate::faults::panic_message(payload)
                            ),
                        ))));
                    }
                    metrics.add("recovery.publish_retries", 1);
                    if let Some(t) = &self.tracer {
                        t.instant(
                            "sink.publish_retry",
                            i,
                            batch_span,
                            publish_retries as u64,
                            "publish panicked; re-rendering from intact state",
                        );
                    }
                    recovered = true;
                }
            }
        };
        publish_span.stop(&mut metrics, "sink.publish_ns");
        metrics.add("sink.result_rows", result.relation.len() as u64);
        self.cumulative_metrics.merge(&metrics);
        let self_time_ns = match &self.tracer {
            Some(t) => {
                t.end(
                    "batch",
                    i,
                    batch_span,
                    self.query_span,
                    result.relation.len() as u64,
                );
                self_time_by_name(&t.events_since(trace_from_seq))
                    .into_iter()
                    .collect()
            }
            None => Vec::new(),
        };
        Ok(BatchReport {
            batch: i,
            result,
            stats,
            metrics,
            elapsed: start.elapsed(),
            fraction: self.batches.rows_through(i) as f64 / self.batches.total_rows().max(1) as f64,
            recovered,
            state_bytes_join,
            state_bytes_other,
            self_time_ns,
        })
    }

    fn process_delta(
        &mut self,
        i: usize,
        delta: &Relation,
        stats: &mut BatchStats,
        metrics: &mut Metrics,
        batch_span: SpanId,
    ) -> Result<Vec<(iolap_relation::AggRef, RangeOutcome)>, DriverError> {
        let shipped_before = self.shard_bytes_shipped();
        let mut ctx = BatchCtx {
            registry: &mut self.registry,
            batch_index: i,
            scale: self.batches.scale_after(i),
            slack: self.config.slack,
            trials: self.config.trials,
            opt1: self.config.opt_tuple_partition,
            opt2: self.config.opt_lazy_lineage,
            last_batch: i + 1 == self.batches.num_batches(),
            stream_delta: delta,
            stream_table: &self.stream_table,
            catalog: &self.catalog,
            seed: self.config.seed,
            parallelism: self.config.parallelism,
            shards: self.shards.as_deref(),
            stats: BatchStats::default(),
            outcomes: Vec::new(),
            metrics: Metrics::new(),
            faults: self.faults.as_deref(),
            trace: self.tracer.as_deref(),
            cur_span: batch_span,
        };
        // A panicking operator (a poisoned deref, an injected fault) must
        // surface as a recoverable error, not tear down the controller: the
        // checkpoint mechanism makes half-updated state safe to abandon.
        let out =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.root.process(&mut ctx)))
                .unwrap_or_else(|payload| {
                    Err(EngineError::Plan(format!(
                        "operator panicked: {}",
                        crate::faults::panic_message(payload)
                    )))
                })?;
        let outcomes = std::mem::take(&mut ctx.outcomes);
        let ctx_stats = std::mem::take(&mut ctx.stats);
        let ctx_metrics = std::mem::take(&mut ctx.metrics);
        drop(ctx);
        stats.recomputed_tuples += ctx_stats.recomputed_tuples;
        let publish_delta = self.registry_publish_delta();
        stats.shipped_bytes += ctx_stats.shipped_bytes + publish_delta;
        stats.failures += ctx_stats.failures;
        metrics.merge(&ctx_metrics);
        metrics.add("registry.publish_bytes", publish_delta as u64);
        if self.shards.is_some() {
            metrics.add(
                "shard.bytes_shipped",
                self.shard_bytes_shipped().saturating_sub(shipped_before),
            );
        }
        // Derefs happen through `&self` (lazy lineage resolution, possibly
        // on fold workers), so the count lives in the registry; diff it
        // here for the per-batch view. Restores never interleave within
        // one process_delta, so the snapshot diff is well-defined.
        let derefs = self.registry.deref_count();
        metrics.add("registry.derefs", derefs.saturating_sub(self.last_derefs));
        self.last_derefs = derefs;
        out.record_channel(metrics);
        self.sink.ingest(out.delta_certain, out.uncertain);
        Ok(outcomes)
    }

    fn registry_publish_delta(&mut self) -> usize {
        // published_bytes is cumulative; report per-call growth.
        // (Kept simple: the driver reads it once per process_delta.)
        let total = self.registry.published_bytes();
        let delta = total.saturating_sub(self.last_published);
        self.last_published = total;
        delta
    }

    /// Checkpoint batch on the `-1 = initial` number line used by recovery
    /// targets.
    fn cp_batch(c: &Checkpoint) -> isize {
        if c.batch == usize::MAX {
            -1
        } else {
            c.batch as isize
        }
    }

    /// Restore the newest *intact* checkpoint at or before recovery point
    /// `j` (`-1` = initial state). A checkpoint whose digest no longer
    /// matches its fingerprint is discarded and an older one is tried —
    /// restoring older than asked is always sound, it just replays a
    /// longer suffix. The initial checkpoint is never corrupted or pruned,
    /// so the walk always terminates successfully. `restored_batch`
    /// reports which batch the state now reflects.
    fn restore_checkpoint(&mut self, j: isize, metrics: &mut Metrics) -> Result<(), DriverError> {
        loop {
            let idx = self
                .checkpoints
                .iter()
                .rposition(|c| Self::cp_batch(c) <= j)
                .ok_or_else(|| DriverError::Setup("no usable checkpoint".into()))?;
            if self.checkpoints[idx].digest != self.checkpoints[idx].fingerprint() {
                metrics.add("ckpt.corrupt_detected", 1);
                self.checkpoints.remove(idx);
                continue;
            }
            self.checkpoints.truncate(idx + 1);
            let cp = &self.checkpoints[idx];
            self.root = cp.root.clone();
            self.sink = cp.sink.clone();
            self.registry = cp.registry.clone();
            self.last_published = self.registry.published_bytes();
            self.last_derefs = self.registry.deref_count();
            return Ok(());
        }
    }

    /// Examine the outcomes of one processing pass: every non-quarantined
    /// failing attribute is quarantined (its failure count bumped) and the
    /// pass-wide recovery point — the minimum over per-attribute targets —
    /// is returned; `None` means the pass is clean.
    ///
    /// §5.1 failure handling, gated on usage: only attributes whose range
    /// actually pruned a tuple can have corrupted saved decisions; unused
    /// attributes simply adopt their fresh range. The replay target never
    /// needs to predate an attribute's first pruning use — no decision
    /// involving it exists before then.
    fn examine_failures(&mut self, outcomes: &[(AggRef, RangeOutcome)]) -> Option<isize> {
        let mut failure_target: Option<isize> = None;
        for (r, o) in outcomes {
            if let RangeOutcome::Failure { replay_from } = o {
                if self.quarantined.contains(r) {
                    continue;
                }
                let Some(first_used) = self.registry.first_used(r) else {
                    continue;
                };
                let tracker_j = replay_from.map(|j| j as isize).unwrap_or(-1);
                let usage_j = first_used as isize - 1;
                let j = tracker_j.max(usage_j);
                failure_target = Some(failure_target.map_or(j, |x: isize| x.min(j)));
                // Quarantine the attribute for the recovery window so the
                // replayed decisions cannot reuse the violated range.
                *self.failure_counts.entry(r.clone()).or_insert(0) += 1;
                self.quarantined.insert(r.clone());
            }
        }
        failure_target
    }

    /// Flip an armed `FailRange` fault: a matching `Ok` outcome becomes a
    /// `Failure { replay_from: i-1 }` — the shape a tracker reports when
    /// only the previous batch's range still covers the fresh envelope.
    /// Downstream recovery cannot tell the difference, which is the point;
    /// and the hardened loop does not *depend* on the claim being true
    /// (an inaccurate target at worst re-fails the replay, which recovers
    /// again, bounded). Only ranges that actually pruned (and are not
    /// quarantined) are eligible: a failure of an unused range carries no
    /// corrupted decisions and would be discarded by the usage gate
    /// anyway. At most one outcome flips per pass, so multiple armed
    /// faults stagger across recovery passes — the second lands
    /// *mid-replay*, exercising the cascade path.
    fn apply_forced_failures(&self, i: usize, outcomes: &mut [(AggRef, RangeOutcome)]) {
        for (r, o) in outcomes.iter_mut() {
            if !matches!(o, RangeOutcome::Ok)
                || self.registry.first_used(r).is_none()
                || self.quarantined.contains(r)
            {
                continue;
            }
            if matches!(&self.faults, Some(f) if f.inject_range_failure(r.agg, r.column)) {
                *o = RangeOutcome::Failure {
                    replay_from: i.checked_sub(1),
                };
                return;
            }
        }
    }

    /// Degradation: every currently-quarantined attribute is barred from
    /// pruning for good (its failure count saturates), so the HDA-style
    /// full-prefix recomputation that follows cannot fail the same way.
    fn bar_quarantined_offenders(&mut self) {
        for r in &self.quarantined {
            self.failure_counts.insert(r.clone(), MAX_REF_FAILURES);
        }
    }

    /// Bounded retention. A future recovery target is always
    /// `j ≥ F = min over live (non-barred) used attributes of
    /// (first_used - 1)`: the usage gate in `examine_failures` never asks
    /// for anything older. Checkpoints strictly older than the newest one
    /// at or before `F` can therefore never be selected — drop them. On
    /// top of that a hard cap (`max_checkpoints`) bounds worst-case
    /// memory; dropping a feasible checkpoint under the cap is still
    /// sound, recovery just restores an older survivor and replays more.
    /// The initial checkpoint (index 0, O(1) bytes) is always retained so
    /// corruption fallback and degradation always have a target.
    fn prune_checkpoints(&mut self, i: usize, metrics: &mut Metrics) {
        let barred: HashSet<AggRef> = self
            .failure_counts
            .iter()
            .filter(|(_, c)| **c >= MAX_REF_FAILURES)
            .map(|(r, _)| r.clone())
            .collect();
        let feasible = self
            .registry
            .min_live_first_use(&barred)
            .map(|b| b as isize - 1)
            .unwrap_or(i as isize);
        let anchor = self
            .checkpoints
            .iter()
            .rposition(|c| Self::cp_batch(c) <= feasible)
            .unwrap_or(0);
        if anchor > 1 {
            metrics.add("ckpt.pruned", (anchor - 1) as u64);
            self.checkpoints.drain(1..anchor);
        }
        let cap = self.config.max_checkpoints.max(2);
        while self.checkpoints.len() > cap {
            self.checkpoints.remove(1);
            metrics.add("ckpt.pruned", 1);
        }
    }

    fn reseed_quarantine(&mut self) {
        for r in &self.quarantined {
            self.registry.quarantine(r.clone());
        }
    }

    fn lift_quarantine(&mut self) {
        let counts = &self.failure_counts;
        let readmitted: Vec<_> = self
            .quarantined
            .iter()
            .filter(|r| counts.get(*r).copied().unwrap_or(0) < MAX_REF_FAILURES)
            .cloned()
            .collect();
        for r in readmitted {
            self.quarantined.remove(&r);
            self.registry.unquarantine(&r);
        }
    }

    /// First batch the replay must cover after restoring to target `j`:
    /// the batch after the restored checkpoint. Derived from `j` with the
    /// same newest-at-or-before rule `restore_checkpoint` uses, so the two
    /// cannot drift apart (the previous implementation ignored `j` and
    /// trusted `checkpoints.last()`, which silently desynchronized when a
    /// restore discarded corrupted saves).
    fn restored_batch(&self, j: isize) -> usize {
        let idx = self
            .checkpoints
            .iter()
            .rposition(|c| Self::cp_batch(c) <= j);
        debug_assert_eq!(
            idx,
            self.checkpoints.len().checked_sub(1),
            "restore must leave its target checkpoint newest"
        );
        match idx.map(|k| &self.checkpoints[k]) {
            Some(c) if c.batch != usize::MAX => c.batch + 1,
            _ => 0,
        }
    }

    /// Per-fault fire counts `(kind label, armed batch, fires)` when a
    /// fault plan is armed; empty in production (no plan).
    pub fn fault_fires(&self) -> Vec<(&'static str, usize, u64)> {
        self.faults.as_ref().map(|f| f.fired()).unwrap_or_default()
    }

    /// The trace journal, when the config enabled one.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Snapshot of the retained trace events (empty when tracing is off).
    pub fn trace_events(&self) -> Vec<crate::trace::TraceEvent> {
        self.tracer.as_ref().map(|t| t.events()).unwrap_or_default()
    }

    /// Deterministic flight-recorder dump of the retained journal, when
    /// tracing is enabled. Also printed to stderr automatically when the
    /// driver surfaces a hard engine error.
    pub fn flight_dump(&self) -> Option<String> {
        self.tracer.as_ref().map(|t| t.flight_dump())
    }

    /// Retained checkpoint footprint: `(count, approximate state bytes)`.
    pub fn checkpoint_footprint(&self) -> (usize, usize) {
        (
            self.checkpoints.len(),
            self.checkpoints.iter().map(|c| c.bytes).sum(),
        )
    }

    fn combined_delta(&self, from_batch: usize, through_batch: usize) -> Relation {
        let schema = self.batches.batch(0).schema().clone();
        let mut rows: Vec<Row> = Vec::new();
        for b in from_batch..=through_batch {
            rows.extend(self.batches.batch(b).rows().iter().cloned());
        }
        Relation::new(schema, rows)
    }
}

#[cfg(test)]
mod tests {
    //! Checkpoint-bookkeeping unit tests. End-to-end recovery correctness
    //! lives in `tests/recovery.rs`; these exercise the private restore /
    //! quarantine / metrics plumbing directly.

    use super::*;
    use iolap_relation::{AggRef, DataType, PartitionMode, Schema, Value};
    use std::sync::Arc;

    /// Strictly drifting values: with zero slack, the running AVG climbs
    /// out of every early variation range, forcing recovery.
    fn catalog(n: usize) -> Catalog {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]);
        let rows = (0..n)
            .map(|i| vec![Value::Int(i as i64), Value::Float(i as f64 + 0.25)])
            .collect();
        let mut c = Catalog::new();
        c.register("t", Relation::from_values(schema, rows));
        c
    }

    fn driver(n: usize, batches: usize, slack: f64, ckpt: usize) -> IolapDriver {
        let mut cfg = IolapConfig::with_batches(batches)
            .trials(8)
            .seed(3)
            .slack(slack);
        cfg.partition_mode = PartitionMode::Sequential;
        cfg.checkpoint_interval = ckpt;
        IolapDriver::from_sql(
            "SELECT SUM(x) FROM t WHERE x > (SELECT AVG(x) FROM t)",
            &catalog(n),
            &FunctionRegistry::with_builtins(),
            "t",
            cfg,
        )
        .unwrap()
    }

    fn aref() -> AggRef {
        AggRef {
            agg: 0,
            column: 0,
            key: Arc::from(Vec::<Value>::new()),
        }
    }

    #[test]
    fn zero_batches_is_a_setup_error() {
        let result = IolapDriver::from_sql(
            "SELECT SUM(x) FROM t",
            &catalog(8),
            &FunctionRegistry::with_builtins(),
            "t",
            IolapConfig::with_batches(0),
        );
        match result {
            Err(DriverError::Setup(_)) => {}
            Err(other) => panic!("expected Setup error, got: {other}"),
            Ok(_) => panic!("num_batches == 0 must be rejected"),
        }
    }

    /// Slack large enough that drifting data never escapes a range — the
    /// bookkeeping tests need checkpoint history untouched by recovery.
    const NO_FAIL: f64 = 1e12;

    #[test]
    fn checkpoints_prune_to_newest_when_no_ranges_prune() {
        // With an astronomically slack range nothing is ever pruned, so no
        // attribute has a first-use batch: every future recovery target is
        // the current batch and only the newest save (plus the pristine
        // initial checkpoint) can ever be selected.
        let mut d = driver(120, 6, NO_FAIL, 2);
        d.run_to_completion().unwrap();
        let batches: Vec<usize> = d.checkpoints.iter().map(|c| c.batch).collect();
        assert_eq!(batches, vec![usize::MAX, 5]);
    }

    #[test]
    fn retention_keeps_checkpoints_back_to_first_use() {
        // An attribute first used for pruning at batch 3 pins every
        // checkpoint from batch 2 on; older intermediates are pruned.
        let mut cfg = IolapConfig::with_batches(6)
            .trials(8)
            .seed(3)
            .slack(NO_FAIL)
            .max_checkpoints(16);
        cfg.partition_mode = PartitionMode::Sequential;
        cfg.checkpoint_interval = 1;
        let mut d = IolapDriver::from_sql(
            "SELECT SUM(x) FROM t WHERE x > (SELECT AVG(x) FROM t)",
            &catalog(120),
            &FunctionRegistry::with_builtins(),
            "t",
            cfg,
        )
        .unwrap();
        d.registry.mark_used(aref(), 3);
        d.run_to_completion().unwrap();
        let batches: Vec<usize> = d.checkpoints.iter().map(|c| c.batch).collect();
        assert_eq!(batches, vec![usize::MAX, 2, 3, 4, 5]);
    }

    #[test]
    fn restore_truncates_newer_checkpoints() {
        let mut d = driver(120, 6, NO_FAIL, 1);
        // Pin retention to the start so the cap, not feasibility, governs.
        d.registry.mark_used(aref(), 0);
        for _ in 0..5 {
            d.step().unwrap().unwrap();
        }
        // Cap 4 (the default): initial + the 3 newest of batches 0..=4.
        let batches: Vec<usize> = d.checkpoints.iter().map(|c| c.batch).collect();
        assert_eq!(batches, vec![usize::MAX, 2, 3, 4]);
        d.restore_checkpoint(2, &mut Metrics::new()).unwrap();
        let batches: Vec<usize> = d.checkpoints.iter().map(|c| c.batch).collect();
        assert_eq!(batches, vec![usize::MAX, 2]);
        assert_eq!(d.restored_batch(2), 3);
        // The publish baselines must match the restored registry, not the
        // discarded newer state.
        assert_eq!(d.last_published, d.registry.published_bytes());
        assert_eq!(d.last_derefs, d.registry.deref_count());
    }

    #[test]
    fn restore_with_sparse_checkpoints_replays_from_checkpoint_batch() {
        // Interval 3 saves after batches 2 and 5; a failure at batch 4
        // targeting j=4 must restore the batch-2 checkpoint and replay
        // from batch 3 — the checkpoint's successor, NOT the failure
        // batch. (The old `restored_batch` ignored its argument; this
        // pins the j-derived behaviour.)
        let mut d = driver(120, 6, NO_FAIL, 3);
        d.registry.mark_used(aref(), 3); // keep the batch-2 checkpoint alive
        d.run_to_completion().unwrap();
        let batches: Vec<usize> = d.checkpoints.iter().map(|c| c.batch).collect();
        assert_eq!(batches, vec![usize::MAX, 2, 5]);
        d.restore_checkpoint(4, &mut Metrics::new()).unwrap();
        assert_eq!(d.restored_batch(4), 3);
    }

    #[test]
    fn restore_to_initial_resets_published_baseline() {
        let mut d = driver(120, 6, NO_FAIL, 1);
        for _ in 0..3 {
            d.step().unwrap().unwrap();
        }
        assert!(d.last_published > 0, "batches must have published state");
        d.restore_checkpoint(-1, &mut Metrics::new()).unwrap();
        assert_eq!(d.checkpoints.len(), 1);
        assert!(d.registry.is_empty());
        assert_eq!(d.last_published, 0);
        assert_eq!(d.restored_batch(-1), 0);
    }

    #[test]
    fn corrupted_checkpoint_is_skipped_on_restore() {
        let mut d = driver(120, 6, NO_FAIL, 1);
        d.registry.mark_used(aref(), 0);
        for _ in 0..4 {
            d.step().unwrap().unwrap();
        }
        let batches: Vec<usize> = d.checkpoints.iter().map(|c| c.batch).collect();
        assert_eq!(batches, vec![usize::MAX, 1, 2, 3]);
        // Damage the newest save; a restore targeting it must detect the
        // mismatch and fall back to the batch-2 checkpoint.
        let last = d.checkpoints.len() - 1;
        d.checkpoints[last].digest ^= 1;
        let mut m = Metrics::new();
        d.restore_checkpoint(3, &mut m).unwrap();
        assert_eq!(m.get("ckpt.corrupt_detected"), 1);
        assert_eq!(d.restored_batch(3), 3); // batch-2 checkpoint + 1
        let batches: Vec<usize> = d.checkpoints.iter().map(|c| c.batch).collect();
        assert_eq!(batches, vec![usize::MAX, 1, 2]);
    }

    #[test]
    fn checkpoint_footprint_flat_as_batches_grow() {
        // Doubling the batch count at a fixed interval must not grow the
        // retained checkpoint footprint: retention is bounded by the cap,
        // not by stream length. Zero slack forces real recovery traffic
        // along the way, exercising retention under restores too.
        let peak = |num_batches: usize| {
            let mut d = driver(240, num_batches, 0.0, 2);
            let mut count = 0usize;
            let mut bytes = 0usize;
            while let Some(step) = d.step() {
                step.unwrap();
                let (c, b) = d.checkpoint_footprint();
                count = count.max(c);
                bytes = bytes.max(b);
            }
            (count, bytes)
        };
        let (count8, bytes8) = peak(8);
        let (count16, bytes16) = peak(16);
        assert!(count8 <= 4, "cap must bound retained checkpoints: {count8}");
        assert!(
            count16 <= 4,
            "cap must bound retained checkpoints: {count16}"
        );
        assert!(
            bytes16 <= 2 * bytes8.max(1),
            "peak checkpoint bytes must stay flat: {bytes16} vs {bytes8}"
        );
    }

    #[test]
    fn quarantine_reseeds_and_lifts_first_offenders_only() {
        let mut d = driver(120, 6, NO_FAIL, 1);
        let r = aref();

        // First failure: survives the restore reseed, lifted after replay.
        d.quarantined.insert(r.clone());
        d.failure_counts.insert(r.clone(), 1);
        d.reseed_quarantine();
        assert!(d.registry.is_quarantined(&r));
        d.lift_quarantine();
        assert!(!d.registry.is_quarantined(&r));
        assert!(d.quarantined.is_empty());

        // Repeat offender at the failure cap: stays quarantined.
        d.quarantined.insert(r.clone());
        d.failure_counts.insert(r.clone(), MAX_REF_FAILURES);
        d.reseed_quarantine();
        d.lift_quarantine();
        assert!(d.registry.is_quarantined(&r));
        assert!(d.quarantined.contains(&r));
    }

    #[test]
    fn metrics_monotone_across_recovery() {
        // Zero slack on drifting data forces at least one checkpoint
        // restore; the cumulative metrics must keep counting monotonically
        // through it (restores roll back operator state, never the
        // observability record) and must equal the merged per-batch views.
        let mut d = driver(240, 8, 0.0, 1);
        let mut prev = Metrics::new();
        let mut merged = Metrics::new();
        let mut recovered = false;
        while let Some(step) = d.step() {
            let report = step.unwrap();
            recovered |= report.recovered;
            merged.merge(&report.metrics);
            let now = d.metrics().clone();
            for (name, v) in prev.iter() {
                assert!(
                    now.get(name) >= v,
                    "metric {name} regressed: {} < {v}",
                    now.get(name)
                );
            }
            prev = now;
        }
        assert!(recovered, "zero slack on drifting data must recover");
        assert!(prev.get("recovery.replays") >= 1);
        assert!(prev.get("scan.rows") >= 240, "replays re-scan rows");
        assert_eq!(&merged, d.metrics(), "cumulative == merged per-batch");
    }
}
