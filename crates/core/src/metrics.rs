//! Per-operator observability: a lightweight, zero-dependency registry of
//! monotonic counters, wall-clock spans, and byte gauges.
//!
//! The paper's query controller (§7) "monitors the correctness of all the
//! variation ranges" and reports per-batch latency, #tuples recomputed, and
//! state sizes. This module generalizes that bookkeeping: every online
//! operator, the rewriter, the bootstrap fold, and the driver's
//! checkpoint/restore/replay paths record named metrics into the
//! [`BatchCtx`](crate::ops::BatchCtx), and each
//! [`BatchReport`](crate::driver::BatchReport) carries the per-batch slice.
//!
//! Metric names are dotted: the prefix before the first `.` names the
//! operator or subsystem (`agg`, `join`, `select`, `scan`, `project`,
//! `range`, `registry`, `ckpt`, `recovery`, `sink`, `rewrite`), the suffix
//! names the measurement. Time spans end in `_ns` (nanoseconds), byte
//! gauges in `_bytes`; everything else is a plain count. Names are
//! `&'static str` and increments are batched per operator call, so the
//! instrumentation overhead on the hot fold/probe paths stays in the noise
//! (well under the ~5% budget of the Fig 7(a) latency path).

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// A flat, ordered bag of named `u64` metrics.
///
/// Deliberately minimal: no hierarchy beyond the name convention, no
/// float math, no interior mutability. Merging is pointwise addition, so
/// per-batch metrics sum into per-query totals and per-worker slices sum
/// into per-batch ones.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    values: BTreeMap<&'static str, u64>,
}

impl Metrics {
    /// Empty metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `v` to counter `name` (creating it at zero).
    #[inline]
    pub fn add(&mut self, name: &'static str, v: u64) {
        *self.values.entry(name).or_insert(0) += v;
    }

    /// Record the elapsed nanoseconds since `start` under `name`.
    /// Convention: `name` ends in `_ns`.
    #[inline]
    pub fn record_since(&mut self, name: &'static str, start: Instant) {
        self.add(name, start.elapsed().as_nanos() as u64);
    }

    /// Current value of `name` (zero when never recorded).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Whether any metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of distinct metric names.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Pointwise-add all of `other` into `self`.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in &other.values {
            self.add(name, *v);
        }
    }

    /// All `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(n, v)| (*n, *v))
    }

    /// Metrics grouped by operator prefix (the segment before the first
    /// `.`), preserving name order within each group.
    pub fn by_operator(&self) -> BTreeMap<&'static str, Vec<(&'static str, u64)>> {
        let mut out: BTreeMap<&'static str, Vec<(&'static str, u64)>> = BTreeMap::new();
        for (name, v) in &self.values {
            let op = name.split('.').next().unwrap_or(name);
            out.entry(op).or_default().push((name, *v));
        }
        out
    }

    /// Total nanoseconds across every `*_ns` span (a rough "instrumented
    /// time" figure; spans of nested operators overlap, so this is an
    /// upper bound, not wall-clock).
    pub fn total_span_ns(&self) -> u64 {
        self.values
            .iter()
            .filter(|(n, _)| n.ends_with("_ns"))
            .map(|(_, v)| *v)
            .sum()
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (op, entries) in self.by_operator() {
            writeln!(f, "{op}:")?;
            for (name, v) in entries {
                if name.ends_with("_ns") {
                    writeln!(f, "  {name:<28} {:>12.3} ms", v as f64 / 1e6)?;
                } else {
                    writeln!(f, "  {name:<28} {v:>12}")?;
                }
            }
        }
        Ok(())
    }
}

/// A started wall-clock span; finish with [`Span::stop`].
///
/// ```
/// # use iolap_core::metrics::{Metrics, Span};
/// # let mut m = Metrics::new();
/// let span = Span::start();
/// // ... work ...
/// span.stop(&mut m, "agg.fold_ns");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Span(Instant);

impl Span {
    /// Start timing now.
    pub fn start() -> Self {
        Span(Instant::now())
    }

    /// Record the elapsed nanoseconds under `name`.
    pub fn stop(self, metrics: &mut Metrics, name: &'static str) {
        metrics.record_since(name, self.0);
    }

    /// Elapsed wall-clock time since the span started, without recording.
    /// This is the repo's sanctioned clock read — `Instant::now()` outside
    /// this module is rejected by the source lint (rule L003).
    pub fn elapsed(&self) -> std::time::Duration {
        self.0.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_merge() {
        let mut a = Metrics::new();
        a.add("agg.fold_rows", 10);
        a.add("agg.fold_rows", 5);
        a.add("join.probe_rows", 3);
        assert_eq!(a.get("agg.fold_rows"), 15);
        assert_eq!(a.get("missing"), 0);

        let mut b = Metrics::new();
        b.add("agg.fold_rows", 1);
        b.add("scan.rows", 7);
        a.merge(&b);
        assert_eq!(a.get("agg.fold_rows"), 16);
        assert_eq!(a.get("scan.rows"), 7);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn groups_by_prefix() {
        let mut m = Metrics::new();
        m.add("agg.fold_ns", 100);
        m.add("agg.fold_rows", 2);
        m.add("join.probe_rows", 9);
        let groups = m.by_operator();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups["agg"].len(), 2);
        assert_eq!(groups["join"], vec![("join.probe_rows", 9)]);
    }

    #[test]
    fn spans_accumulate_time() {
        let mut m = Metrics::new();
        let s = Span::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        s.stop(&mut m, "test.span_ns");
        assert!(m.get("test.span_ns") >= 1_000_000);
        assert_eq!(m.total_span_ns(), m.get("test.span_ns"));
    }

    #[test]
    fn display_renders_groups() {
        let mut m = Metrics::new();
        m.add("agg.fold_ns", 2_000_000);
        m.add("agg.fold_rows", 41);
        let s = m.to_string();
        assert!(s.contains("agg:"));
        assert!(s.contains("agg.fold_rows"));
        assert!(s.contains("ms"));
    }
}
