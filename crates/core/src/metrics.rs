//! Per-operator observability: a lightweight, zero-dependency registry of
//! monotonic counters, wall-clock spans, and byte gauges.
//!
//! The paper's query controller (§7) "monitors the correctness of all the
//! variation ranges" and reports per-batch latency, #tuples recomputed, and
//! state sizes. This module generalizes that bookkeeping: every online
//! operator, the rewriter, the bootstrap fold, and the driver's
//! checkpoint/restore/replay paths record named metrics into the
//! [`BatchCtx`](crate::ops::BatchCtx), and each
//! [`BatchReport`](crate::driver::BatchReport) carries the per-batch slice.
//!
//! Metric names are dotted: the prefix before the first `.` names the
//! operator or subsystem (`agg`, `join`, `select`, `scan`, `project`,
//! `range`, `registry`, `ckpt`, `recovery`, `sink`, `rewrite`), the suffix
//! names the measurement. Time spans end in `_ns` (nanoseconds), byte
//! gauges in `_bytes`; everything else is a plain count. Names are
//! `&'static str` and increments are batched per operator call, so the
//! instrumentation overhead on the hot fold/probe paths stays in the noise
//! (well under the ~5% budget of the Fig 7(a) latency path).

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// Number of log₂ buckets in a [`Histogram`]: bucket `i` covers values
/// whose bit length is `i`, so 64 buckets span the whole `u64` range.
pub const HIST_BUCKETS: usize = 64;

/// A log-scale latency histogram: power-of-two buckets, pointwise-additive
/// merge, deterministic quantiles (bucket midpoints, no interpolation).
///
/// Every `*_ns` span recorded through [`Metrics::record_since`] also lands
/// one sample here, so per-operator distributions (p50/p95/p99) come for
/// free next to the existing sums. A fixed array keeps observation at two
/// integer ops plus an index — no allocation on the hot paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Bucket index of `v`: its bit length (0 for 0, 1 for 1, 2 for 2–3…).
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        let i = Self::bucket_of(v).min(HIST_BUCKETS - 1);
        self.buckets[i] = self.buckets[i].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample observed, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample observed, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Deterministic quantile estimate (`q` in `[0, 1]`). `None` when the
    /// histogram is empty — callers that would otherwise print a p95/p99
    /// (the `--json` emitter, the `Display` impl) must render the absence
    /// explicitly instead of a fabricated number. A single-sample histogram
    /// returns that exact sample rather than its bucket midpoint, and every
    /// estimate is clamped into the observed `[min, max]` range, so a
    /// quantile can never lie outside the data (the old midpoint rule did
    /// for admitted-then-immediately-cancelled sessions whose lone sample
    /// sat at a bucket edge). Otherwise: the midpoint of the bucket holding
    /// the `q`-th sample, no interpolation.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if self.count == 1 {
            return Some(self.min);
        }
        let rank = ((q.clamp(0.0, 1.0) * (self.count as f64 - 1.0)) as u64).min(self.count - 1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*b);
            if *b > 0 && seen > rank {
                return Some(Self::bucket_midpoint(i).clamp(self.min, self.max));
            }
        }
        None
    }

    /// Midpoint of bucket `i` (bucket 0 holds only the value 0).
    fn bucket_midpoint(i: usize) -> u64 {
        if i == 0 {
            return 0;
        }
        let lo = 1u64 << (i - 1);
        let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
        lo + (hi - lo) / 2
    }

    /// Pointwise-add `other` into `self` (so per-batch histograms sum into
    /// per-query ones exactly, keeping cumulative merges reproducible).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A flat, ordered bag of named `u64` metrics.
///
/// Deliberately minimal: no hierarchy beyond the name convention, no
/// float math, no interior mutability. Merging is pointwise addition, so
/// per-batch metrics sum into per-query totals and per-worker slices sum
/// into per-batch ones. Span metrics (`*_ns`) additionally feed a
/// per-name log-scale [`Histogram`], so latency percentiles survive the
/// summation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    values: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// Empty metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `v` to counter `name` (creating it at zero). Saturating: a
    /// pathological clock or a merge of near-`u64::MAX` counters pins the
    /// counter at the ceiling instead of wrapping mid-report.
    #[inline]
    pub fn add(&mut self, name: &'static str, v: u64) {
        let e = self.values.entry(name).or_insert(0);
        *e = e.saturating_add(v);
    }

    /// Record the elapsed nanoseconds since `start` under `name`, and land
    /// one sample in `name`'s latency histogram. Convention: `name` ends
    /// in `_ns`. The `u128 → u64` narrowing saturates (≈ 584 years of
    /// nanoseconds) rather than truncating.
    #[inline]
    pub fn record_since(&mut self, name: &'static str, start: Instant) {
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.add(name, ns);
        self.hists.entry(name).or_default().observe(ns);
    }

    /// Record one explicit duration sample (sum + histogram), for callers
    /// that measured elapsed time themselves.
    #[inline]
    pub fn record_ns(&mut self, name: &'static str, ns: u64) {
        self.add(name, ns);
        self.hists.entry(name).or_default().observe(ns);
    }

    /// Latency histogram of span `name`, if any sample landed there.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Deterministic `q`-quantile of span `name`'s samples (bucket
    /// midpoint), or `None` when no sample was recorded.
    pub fn quantile_ns(&self, name: &str, q: f64) -> Option<u64> {
        self.hists.get(name).and_then(|h| h.quantile(q))
    }

    /// All `(name, histogram)` pairs in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hists.iter().map(|(n, h)| (*n, h))
    }

    /// Current value of `name` (zero when never recorded).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Whether any metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of distinct metric names.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Pointwise-add all of `other` into `self` (histograms included, so
    /// cumulative merges preserve exact per-bucket counts).
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in &other.values {
            self.add(name, *v);
        }
        for (name, h) in &other.hists {
            self.hists.entry(name).or_default().merge(h);
        }
    }

    /// All `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(n, v)| (*n, *v))
    }

    /// Metrics grouped by operator prefix (the segment before the first
    /// `.`), preserving name order within each group.
    pub fn by_operator(&self) -> BTreeMap<&'static str, Vec<(&'static str, u64)>> {
        let mut out: BTreeMap<&'static str, Vec<(&'static str, u64)>> = BTreeMap::new();
        for (name, v) in &self.values {
            let op = name.split('.').next().unwrap_or(name);
            out.entry(op).or_default().push((name, *v));
        }
        out
    }

    /// Total nanoseconds across every `*_ns` span.
    ///
    /// **Deprecated in favour of the trace layer's exclusive self-time**
    /// ([`crate::trace::self_time_by_name`], surfaced per batch in
    /// `BatchReport::self_time_ns`): spans of nested operators overlap, so
    /// this sum double-counts parents and children and is only an upper
    /// bound, not wall-clock. Kept for back-compat with existing rollups.
    pub fn total_span_ns(&self) -> u64 {
        self.values
            .iter()
            .filter(|(n, _)| n.ends_with("_ns"))
            .fold(0u64, |acc, (_, v)| acc.saturating_add(*v))
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (op, entries) in self.by_operator() {
            writeln!(f, "{op}:")?;
            for (name, v) in entries {
                if name.ends_with("_ns") {
                    writeln!(f, "  {name:<28} {:>12.3} ms", v as f64 / 1e6)?;
                    if let Some(h) = self.hists.get(name) {
                        let q = |p: f64| h.quantile(p).unwrap_or(0) as f64 / 1e6;
                        writeln!(
                            f,
                            "  {:<28} {:>12}  p50 {:.3} / p95 {:.3} / p99 {:.3} ms",
                            "  └ samples",
                            h.count(),
                            q(0.50),
                            q(0.95),
                            q(0.99)
                        )?;
                    }
                } else {
                    writeln!(f, "  {name:<28} {v:>12}")?;
                }
            }
        }
        Ok(())
    }
}

/// A started wall-clock span; finish with [`Span::stop`].
///
/// ```
/// # use iolap_core::metrics::{Metrics, Span};
/// # let mut m = Metrics::new();
/// let span = Span::start();
/// // ... work ...
/// span.stop(&mut m, "agg.fold_ns");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Span(Instant);

impl Span {
    /// Start timing now.
    pub fn start() -> Self {
        Span(Instant::now())
    }

    /// Record the elapsed nanoseconds under `name`.
    pub fn stop(self, metrics: &mut Metrics, name: &'static str) {
        metrics.record_since(name, self.0);
    }

    /// Elapsed wall-clock time since the span started, without recording.
    /// This is the repo's sanctioned clock read — `Instant::now()` outside
    /// this module is rejected by the source lint (rule L003).
    pub fn elapsed(&self) -> std::time::Duration {
        self.0.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_merge() {
        let mut a = Metrics::new();
        a.add("agg.fold_rows", 10);
        a.add("agg.fold_rows", 5);
        a.add("join.probe_rows", 3);
        assert_eq!(a.get("agg.fold_rows"), 15);
        assert_eq!(a.get("missing"), 0);

        let mut b = Metrics::new();
        b.add("agg.fold_rows", 1);
        b.add("scan.rows", 7);
        a.merge(&b);
        assert_eq!(a.get("agg.fold_rows"), 16);
        assert_eq!(a.get("scan.rows"), 7);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn groups_by_prefix() {
        let mut m = Metrics::new();
        m.add("agg.fold_ns", 100);
        m.add("agg.fold_rows", 2);
        m.add("join.probe_rows", 9);
        let groups = m.by_operator();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups["agg"].len(), 2);
        assert_eq!(groups["join"], vec![("join.probe_rows", 9)]);
    }

    #[test]
    fn spans_accumulate_time() {
        let mut m = Metrics::new();
        let s = Span::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        s.stop(&mut m, "test.span_ns");
        assert!(m.get("test.span_ns") >= 1_000_000);
        assert_eq!(m.total_span_ns(), m.get("test.span_ns"));
    }

    #[test]
    fn add_saturates_instead_of_wrapping() {
        let mut m = Metrics::new();
        m.add("x.rows", u64::MAX - 1);
        m.add("x.rows", 10);
        assert_eq!(m.get("x.rows"), u64::MAX);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..90 {
            h.observe(100); // bucket 7: 64..=127, midpoint 95
        }
        for _ in 0..10 {
            h.observe(1_000_000); // bucket 20
        }
        assert_eq!(h.count(), 100);
        // Bucket 7's midpoint is 95, but no sample is below 100, so the
        // estimate clamps up to the observed minimum.
        assert_eq!(h.quantile(0.50), Some(100));
        assert_eq!(h.quantile(0.0), Some(100));
        // The 99th sample (rank 98) falls in the slow bucket.
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 > 500_000 && p99 < 2_000_000, "p99={p99}");
        assert_eq!(h.quantile(1.0), h.quantile(0.99));
        // Extreme values clamp into the last bucket without panicking.
        h.observe(u64::MAX);
        assert_eq!(h.count(), 101);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), None, "q={q}");
        }
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        // A session admitted and cancelled after one batch lands exactly one
        // latency sample; every quantile must be that sample, not a bucket
        // midpoint (127 for a sample of 70, say).
        let mut h = Histogram::new();
        h.observe(70);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(70), "q={q}");
        }
        assert_eq!(h.min(), Some(70));
        assert_eq!(h.max(), Some(70));
    }

    #[test]
    fn quantiles_never_leave_observed_range() {
        let mut h = Histogram::new();
        h.observe(100);
        h.observe(100);
        h.observe(120);
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((100..=120).contains(&v), "q={q} v={v}");
        }
        // min/max survive a merge.
        let mut other = Histogram::new();
        other.observe(5);
        h.merge(&other);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(120));
        assert_eq!(h.quantile(0.0), Some(5));
    }

    #[test]
    fn histograms_merge_pointwise() {
        let mut a = Metrics::new();
        a.record_ns("agg.fold_ns", 100);
        a.record_ns("agg.fold_ns", 200);
        let mut b = Metrics::new();
        b.record_ns("agg.fold_ns", 100);
        let mut sum = Metrics::new();
        sum.merge(&a);
        sum.merge(&b);
        assert_eq!(sum.histogram("agg.fold_ns").unwrap().count(), 3);
        assert_eq!(sum.get("agg.fold_ns"), 400);
        // Merge equals recording the same samples directly (exactness the
        // driver's cumulative-metrics monotonicity test relies on).
        let mut direct = Metrics::new();
        direct.record_ns("agg.fold_ns", 100);
        direct.record_ns("agg.fold_ns", 200);
        direct.record_ns("agg.fold_ns", 100);
        assert_eq!(sum, direct);
    }

    #[test]
    fn record_since_lands_histogram_sample() {
        let mut m = Metrics::new();
        let s = Span::start();
        s.stop(&mut m, "test.span_ns");
        assert_eq!(m.histogram("test.span_ns").unwrap().count(), 1);
        assert!(m.quantile_ns("test.span_ns", 0.5).is_some());
        assert_eq!(m.quantile_ns("missing", 0.5), None);
    }

    #[test]
    fn display_renders_groups() {
        let mut m = Metrics::new();
        m.add("agg.fold_ns", 2_000_000);
        m.add("agg.fold_rows", 41);
        let s = m.to_string();
        assert!(s.contains("agg:"));
        assert!(s.contains("agg.fold_rows"));
        assert!(s.contains("ms"));
    }
}
