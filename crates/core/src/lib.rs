//! # iolap-core
//!
//! The paper's primary contribution: an incremental OLAP query engine that
//! models delta processing as uncertainty propagation (Zeng, Agarwal,
//! Stoica — SIGMOD 2016).
//!
//! Pipeline: a SQL query is planned (`iolap-engine`), rewritten online
//! ([`rewriter`], §7/App. C) using compile-time uncertainty annotation
//! ([`annotate`], §4.1), and executed by the mini-batch driver ([`driver`],
//! §7) over online operators ([`ops`], [`ops_join`], [`ops_agg`] — §4.2)
//! that exchange dual certain/uncertain channels ([`channel`]). Tuple-
//! uncertainty partitioning ([`classify`], §5) prunes recomputation via
//! variation ranges; lineage refs and folded-lineage thunks resolved
//! against the aggregate registry ([`registry`], §6) realize lazy
//! evaluation; the sink ([`sink`]) publishes scaled partial results with
//! bootstrap error estimates after every batch.

#![warn(missing_docs)]

pub mod annotate;
pub mod channel;
pub mod classify;
pub mod config;
pub mod driver;
pub mod faults;
pub mod metrics;
pub mod ops;
pub mod ops_agg;
pub mod ops_join;
pub mod registry;
pub mod rewriter;
pub mod shard;
pub mod sink;
pub mod trace;

pub use annotate::{annotate, AnnotateError, OpAnnotation};
pub use channel::{BatchData, ORow};
pub use classify::{classify, interval_of, Decision, IntervalValue};
pub use config::IolapConfig;
pub use driver::{
    install_plan_verifier, BatchReport, DriverError, IolapDriver, ReplayEvent, ResumeOutcome,
};
pub use faults::{Fault, FaultInjector, FaultKind, FaultPlan};
pub use iolap_engine::EngineError;
pub use metrics::{Histogram, Metrics, Span};
pub use ops::{BatchCtx, BatchStats, OnlineOp, ProjMode};
pub use registry::AggRegistry;
pub use rewriter::{rewrite, OnlineQuery, RewriteError};
pub use shard::{
    fold_fragment_partition, AccState, FoldFragment, FoldPartial, FragKind, FragSrc,
    LocalShardExec, PartialCall, PartialGroup, ShardExec, ShardTraceCtx, ShardWorkerStats,
    PARTITION_ROWS,
};
pub use sink::{Presentation, QueryResult, Sink};
pub use trace::{
    canonical_events, export_chrome, export_jsonl, self_time_by_name, EventKind, SpanId,
    TraceEvent, TraceMode, Tracer,
};
