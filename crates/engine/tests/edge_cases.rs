//! Engine edge cases: empty inputs, NULL propagation, runtime errors, and
//! planner rejections that unit tests in the modules don't cover.

use iolap_engine::{execute, plan_sql, EngineError, FunctionRegistry, PlanError};
use iolap_relation::{Catalog, DataType, Relation, Row, Schema, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        "t",
        Relation::from_values(
            Schema::from_pairs(&[
                ("a", DataType::Int),
                ("b", DataType::Float),
                ("s", DataType::Str),
            ]),
            vec![
                vec![1.into(), 10.0.into(), "alpha".into()],
                vec![2.into(), 20.0.into(), "beta".into()],
                vec![3.into(), Value::Null, "gamma".into()],
            ],
        ),
    );
    c.register(
        "empty",
        Relation::empty(Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
        ])),
    );
    c
}

fn run(sql: &str) -> Relation {
    let c = catalog();
    let r = FunctionRegistry::with_builtins();
    let pq = plan_sql(sql, &c, &r).unwrap();
    execute(&pq.plan, &c).unwrap()
}

#[test]
fn aggregates_skip_nulls() {
    let out = run("SELECT COUNT(b), COUNT(*), AVG(b), SUM(b) FROM t");
    let row = &out.rows()[0];
    assert_eq!(row.values[0], Value::Float(2.0)); // COUNT(b) skips the NULL
    assert_eq!(row.values[1], Value::Float(3.0)); // COUNT(*) does not
    assert_eq!(row.values[2], Value::Float(15.0));
    assert_eq!(row.values[3], Value::Float(30.0));
}

#[test]
fn null_comparisons_filter_rows() {
    // b IS NULL rows never satisfy b > 0 nor b <= 0.
    assert_eq!(run("SELECT a FROM t WHERE b > 0").len(), 2);
    assert_eq!(run("SELECT a FROM t WHERE b <= 0").len(), 0);
    assert_eq!(run("SELECT a FROM t WHERE b <> b").len(), 0);
}

#[test]
fn empty_table_aggregates() {
    let out = run("SELECT COUNT(*), SUM(b), AVG(b), MIN(a) FROM empty");
    let row = &out.rows()[0];
    assert_eq!(row.values[0], Value::Float(0.0));
    assert_eq!(row.values[1], Value::Null);
    assert_eq!(row.values[2], Value::Null);
    assert_eq!(row.values[3], Value::Null);
}

#[test]
fn empty_table_group_by_is_empty() {
    assert_eq!(run("SELECT a, COUNT(*) FROM empty GROUP BY a").len(), 0);
}

#[test]
fn cross_join_with_empty_is_empty() {
    assert_eq!(run("SELECT t.a FROM t, empty WHERE t.a = empty.a").len(), 0);
}

#[test]
fn like_and_case_together() {
    let out = run(
        "SELECT s, CASE WHEN s LIKE '%a' THEN 1 ELSE 0 END AS ends_a \
         FROM t ORDER BY s",
    );
    let flags: Vec<i64> = out
        .rows()
        .iter()
        .map(|r| r.values[1].as_i64().unwrap())
        .collect();
    // alpha, beta, gamma — all end in 'a'.
    assert_eq!(flags, vec![1, 1, 1]);
    let none = run("SELECT s FROM t WHERE s LIKE 'z%'");
    assert_eq!(none.len(), 0);
}

#[test]
fn division_by_zero_is_a_runtime_error() {
    let c = catalog();
    let r = FunctionRegistry::with_builtins();
    let pq = plan_sql("SELECT a / 0 FROM t", &c, &r).unwrap();
    assert!(matches!(execute(&pq.plan, &c), Err(EngineError::Expr(_))));
}

#[test]
fn min_max_on_strings() {
    let out = run("SELECT MIN(s), MAX(s) FROM t");
    assert_eq!(out.rows()[0].values[0], Value::str("alpha"));
    assert_eq!(out.rows()[0].values[1], Value::str("gamma"));
}

#[test]
fn between_with_nulls() {
    assert_eq!(run("SELECT a FROM t WHERE b BETWEEN 5 AND 15").len(), 1);
}

#[test]
fn planner_rejects_aggregate_in_where() {
    let c = catalog();
    let r = FunctionRegistry::with_builtins();
    let err = plan_sql("SELECT a FROM t WHERE SUM(b) > 1", &c, &r).unwrap_err();
    assert!(matches!(err, PlanError::Invalid(_)), "{err}");
}

#[test]
fn planner_rejects_having_without_aggregation() {
    let c = catalog();
    let r = FunctionRegistry::with_builtins();
    let err = plan_sql("SELECT a FROM t HAVING a > 1", &c, &r).unwrap_err();
    assert!(matches!(err, PlanError::Invalid(_)), "{err}");
}

#[test]
fn planner_reports_unknown_function() {
    let c = catalog();
    let r = FunctionRegistry::with_builtins();
    let err = plan_sql("SELECT NO_SUCH_FN(a) FROM t", &c, &r).unwrap_err();
    assert!(matches!(err, PlanError::UnknownFunction(_)));
}

#[test]
fn qualified_star_resolution_after_join() {
    // Self-join with aliases: qualified columns disambiguate.
    let out = run("SELECT x.a, y.a FROM t x, t y WHERE x.a = y.a ORDER BY x.a");
    assert_eq!(out.len(), 3);
    assert_eq!(out.rows()[0].values[0], out.rows()[0].values[1]);
}

#[test]
fn union_all_duplicates_preserved() {
    let out = run("SELECT a FROM t UNION ALL SELECT a FROM t");
    assert_eq!(out.len(), 6);
}

#[test]
fn order_by_nulls_first() {
    let out = run("SELECT b FROM t ORDER BY b");
    assert!(out.rows()[0].values[0].is_null());
}

#[test]
fn weighted_relation_counts() {
    // Direct multiplicity check through the full SQL path: register a
    // pre-weighted relation and COUNT it.
    let mut c = catalog();
    let schema = Schema::from_pairs(&[("v", DataType::Int)]);
    let mut rel = Relation::empty(schema);
    rel.push(Row::with_mult(vec![1.into()], 2.5));
    rel.push(Row::with_mult(vec![2.into()], 0.5));
    c.register("w", rel);
    let r = FunctionRegistry::with_builtins();
    let pq = plan_sql("SELECT COUNT(*), SUM(v) FROM w", &c, &r).unwrap();
    let out = execute(&pq.plan, &c).unwrap();
    assert_eq!(out.rows()[0].values[0], Value::Float(3.0));
    assert_eq!(out.rows()[0].values[1], Value::Float(3.5)); // 1·2.5 + 2·0.5
}
