//! Physical expressions.
//!
//! Expressions are compiled from the SQL AST against a concrete input schema,
//! so column references are positional. One engine-specific feature supports
//! the paper's lazy evaluation (§6.2): when a column holds a
//! [`Value::Ref`] lineage reference instead of a concrete value, any
//! consuming operation *dereferences* it through the [`RefResolver`] in the
//! evaluation context. The batch executor never stores `Ref`s, so it runs
//! with no resolver; the iOLAP online executor stores `Ref`s for uncertain
//! aggregate attributes and supplies its aggregate registry as the resolver —
//! this is exactly how saved operator state is brought up to date "in place,
//! by only referencing the carried lineage" (§4.3).

use iolap_relation::{AggRef, DataType, PendingCell, Row, Value};
use std::fmt;
use std::sync::Arc;

/// Which version of an uncertain aggregate a deref should produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefMode {
    /// The current running estimate.
    Current,
    /// The value from bootstrap trial `i` (used when piggybacking bootstrap,
    /// §2 "Error Estimation").
    Trial(usize),
}

/// Resolves lineage references against the current aggregate registry.
pub trait RefResolver {
    /// Current or per-trial value of the referenced aggregate group. Returns
    /// `Value::Null` when the group has not been produced yet (no input rows
    /// seen for it).
    fn resolve(&self, r: &AggRef, mode: RefMode) -> Value;

    /// Evaluate a deferred-computation cell (folded lineage, §6.1). The
    /// default refuses — only resolvers that create pending cells (the iOLAP
    /// aggregate registry) know their payload type.
    fn resolve_pending(&self, cell: &PendingCell, mode: RefMode) -> Value {
        let _ = (cell, mode);
        Value::Null
    }
}

/// Evaluation context threaded through expression evaluation.
#[derive(Clone, Copy)]
pub struct EvalContext<'a> {
    /// Lineage resolver (absent in pure batch execution).
    pub resolver: Option<&'a dyn RefResolver>,
    /// Which aggregate version derefs yield.
    pub mode: RefMode,
}

impl<'a> EvalContext<'a> {
    /// Context with no resolver (batch execution).
    pub fn batch() -> Self {
        EvalContext {
            resolver: None,
            mode: RefMode::Current,
        }
    }

    /// Context resolving refs to their current values.
    pub fn with_resolver(resolver: &'a dyn RefResolver) -> Self {
        EvalContext {
            resolver: Some(resolver),
            mode: RefMode::Current,
        }
    }

    /// Same resolver, different mode.
    pub fn with_mode(self, mode: RefMode) -> Self {
        EvalContext { mode, ..self }
    }

    fn deref(&self, v: Value) -> Result<Value, ExprError> {
        match v {
            Value::Ref(r) => match self.resolver {
                Some(res) => Ok(res.resolve(&r, self.mode)),
                None => Err(ExprError::UnresolvedRef(r)),
            },
            Value::Pending(c) => match self.resolver {
                Some(res) => Ok(res.resolve_pending(&c, self.mode)),
                None => Err(ExprError::UnresolvedPending),
            },
            other => Ok(other),
        }
    }
}

/// A scalar user-defined function (paper §1: iOLAP "significantly generalizes
/// incremental query processing to complex queries with … UDFs").
pub trait ScalarUdf: Send + Sync {
    /// Function name as referenced in SQL (uppercase).
    fn name(&self) -> &str;
    /// Apply to already-dereferenced argument values.
    fn invoke(&self, args: &[Value]) -> Result<Value, ExprError>;
    /// Result type given argument types.
    fn return_type(&self, args: &[DataType]) -> DataType;
    /// Whether the function is a pure function of its arguments. iOLAP's
    /// supported query class (§3.3) requires deterministic join and group
    /// keys; the static plan verifier rejects keys that call a UDF
    /// returning `false` here.
    fn deterministic(&self) -> bool {
        true
    }
}

/// Comparison operators appearing in predicates (`ϑ` in the paper's `x ϑ y`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// A compiled physical expression over a fixed input schema.
#[derive(Clone)]
pub enum Expr {
    /// Input column by position.
    Col(usize),
    /// Constant.
    Lit(Value),
    /// Arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Comparison producing a boolean.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `CASE WHEN … THEN … ELSE … END`.
    Case {
        /// `(condition, result)` arms.
        when_then: Vec<(Expr, Expr)>,
        /// Fallback result (NULL when absent).
        else_expr: Option<Box<Expr>>,
    },
    /// SQL `LIKE` with `%`/`_` wildcards.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern.
        pattern: Arc<str>,
    },
    /// `expr BETWEEN low AND high` (inclusive).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
    },
    /// Scalar UDF invocation.
    Udf {
        /// The function.
        func: Arc<dyn ScalarUdf>,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "#{i}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Arith { op, left, right } => write!(f, "({left:?} {op:?} {right:?})"),
            Expr::Cmp { op, left, right } => write!(f, "({left:?} {op:?} {right:?})"),
            Expr::And(a, b) => write!(f, "({a:?} AND {b:?})"),
            Expr::Or(a, b) => write!(f, "({a:?} OR {b:?})"),
            Expr::Not(e) => write!(f, "NOT {e:?}"),
            Expr::Neg(e) => write!(f, "-{e:?}"),
            Expr::Case { .. } => write!(f, "CASE…END"),
            Expr::Like { expr, pattern } => write!(f, "({expr:?} LIKE '{pattern}')"),
            Expr::Between { expr, low, high } => {
                write!(f, "({expr:?} BETWEEN {low:?} AND {high:?})")
            }
            Expr::Udf { func, args } => write!(f, "{}({args:?})", func.name()),
        }
    }
}

/// Expression evaluation errors.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprError {
    /// Arithmetic on non-numeric values.
    TypeMismatch(String),
    /// A lineage reference was encountered with no resolver in scope.
    UnresolvedRef(AggRef),
    /// A deferred-computation cell was encountered with no resolver.
    UnresolvedPending,
    /// Division by zero.
    DivideByZero,
    /// UDF-raised error.
    Udf(String),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            ExprError::UnresolvedRef(r) => write!(f, "unresolved lineage reference {r}"),
            ExprError::UnresolvedPending => write!(f, "unresolved deferred-computation cell"),
            ExprError::DivideByZero => write!(f, "division by zero"),
            ExprError::Udf(m) => write!(f, "UDF error: {m}"),
        }
    }
}

impl std::error::Error for ExprError {}

impl Expr {
    /// Evaluate against one row.
    pub fn eval(&self, row: &Row, ctx: &EvalContext<'_>) -> Result<Value, ExprError> {
        match self {
            Expr::Col(i) => ctx.deref(row.values[*i].clone()),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Arith { op, left, right } => {
                let l = left.eval(row, ctx)?;
                let r = right.eval(row, ctx)?;
                arith(*op, &l, &r)
            }
            Expr::Cmp { op, left, right } => {
                let l = left.eval(row, ctx)?;
                let r = right.eval(row, ctx)?;
                Ok(compare(*op, &l, &r))
            }
            Expr::And(a, b) => {
                // SQL three-valued logic on NULLs collapses to
                // false-dominant two-valued logic here: predicates with NULL
                // evaluate to false, which matches filter semantics.
                let l = truthy(&a.eval(row, ctx)?);
                if !l {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(truthy(&b.eval(row, ctx)?)))
            }
            Expr::Or(a, b) => {
                let l = truthy(&a.eval(row, ctx)?);
                if l {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(truthy(&b.eval(row, ctx)?)))
            }
            Expr::Not(e) => Ok(Value::Bool(!truthy(&e.eval(row, ctx)?))),
            Expr::Neg(e) => match e.eval(row, ctx)? {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                Value::Null => Ok(Value::Null),
                other => Err(ExprError::TypeMismatch(format!("cannot negate {other}"))),
            },
            Expr::Case {
                when_then,
                else_expr,
            } => {
                for (cond, val) in when_then {
                    if truthy(&cond.eval(row, ctx)?) {
                        return val.eval(row, ctx);
                    }
                }
                match else_expr {
                    Some(e) => e.eval(row, ctx),
                    None => Ok(Value::Null),
                }
            }
            Expr::Like { expr, pattern } => {
                let v = expr.eval(row, ctx)?;
                match v {
                    Value::Str(s) => Ok(Value::Bool(like_match(&s, pattern))),
                    Value::Null => Ok(Value::Bool(false)),
                    other => Err(ExprError::TypeMismatch(format!(
                        "LIKE applied to non-string {other}"
                    ))),
                }
            }
            Expr::Between { expr, low, high } => {
                let v = expr.eval(row, ctx)?;
                let lo = low.eval(row, ctx)?;
                let hi = high.eval(row, ctx)?;
                let ge = compare(CmpOp::Ge, &v, &lo);
                let le = compare(CmpOp::Le, &v, &hi);
                Ok(Value::Bool(truthy(&ge) && truthy(&le)))
            }
            Expr::Udf { func, args } => {
                let vals = args
                    .iter()
                    .map(|a| a.eval(row, ctx))
                    .collect::<Result<Vec<_>, _>>()?;
                func.invoke(&vals)
            }
        }
    }

    /// Evaluate as a filter predicate: NULL and non-boolean → `false`.
    pub fn eval_predicate(&self, row: &Row, ctx: &EvalContext<'_>) -> Result<bool, ExprError> {
        Ok(truthy(&self.eval(row, ctx)?))
    }

    /// Collect all referenced input columns.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => out.push(*i),
            Expr::Lit(_) => {}
            Expr::Arith { left, right, .. } | Expr::Cmp { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.referenced_columns(out);
                b.referenced_columns(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.referenced_columns(out),
            Expr::Case {
                when_then,
                else_expr,
            } => {
                for (c, v) in when_then {
                    c.referenced_columns(out);
                    v.referenced_columns(out);
                }
                if let Some(e) = else_expr {
                    e.referenced_columns(out);
                }
            }
            Expr::Like { expr, .. } => expr.referenced_columns(out),
            Expr::Between { expr, low, high } => {
                expr.referenced_columns(out);
                low.referenced_columns(out);
                high.referenced_columns(out);
            }
            Expr::Udf { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
        }
    }

    /// Collect the names of all nondeterministic UDFs invoked anywhere in
    /// this expression (per [`ScalarUdf::deterministic`]). Used by the
    /// static plan verifier to enforce the §3.3 deterministic-key rule.
    pub fn nondeterministic_udfs(&self, out: &mut Vec<String>) {
        match self {
            Expr::Col(_) | Expr::Lit(_) => {}
            Expr::Arith { left, right, .. } | Expr::Cmp { left, right, .. } => {
                left.nondeterministic_udfs(out);
                right.nondeterministic_udfs(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.nondeterministic_udfs(out);
                b.nondeterministic_udfs(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.nondeterministic_udfs(out),
            Expr::Case {
                when_then,
                else_expr,
            } => {
                for (c, v) in when_then {
                    c.nondeterministic_udfs(out);
                    v.nondeterministic_udfs(out);
                }
                if let Some(e) = else_expr {
                    e.nondeterministic_udfs(out);
                }
            }
            Expr::Like { expr, .. } => expr.nondeterministic_udfs(out),
            Expr::Between { expr, low, high } => {
                expr.nondeterministic_udfs(out);
                low.nondeterministic_udfs(out);
                high.nondeterministic_udfs(out);
            }
            Expr::Udf { func, args } => {
                if !func.deterministic() {
                    out.push(func.name().to_string());
                }
                for a in args {
                    a.nondeterministic_udfs(out);
                }
            }
        }
    }

    /// Remap column indices (used when splicing expressions across operator
    /// boundaries, e.g. pushing predicates through projections).
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(map(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Arith { op, left, right } => Expr::Arith {
                op: *op,
                left: Box::new(left.remap_columns(map)),
                right: Box::new(right.remap_columns(map)),
            },
            Expr::Cmp { op, left, right } => Expr::Cmp {
                op: *op,
                left: Box::new(left.remap_columns(map)),
                right: Box::new(right.remap_columns(map)),
            },
            Expr::And(a, b) => Expr::And(
                Box::new(a.remap_columns(map)),
                Box::new(b.remap_columns(map)),
            ),
            Expr::Or(a, b) => Expr::Or(
                Box::new(a.remap_columns(map)),
                Box::new(b.remap_columns(map)),
            ),
            Expr::Not(e) => Expr::Not(Box::new(e.remap_columns(map))),
            Expr::Neg(e) => Expr::Neg(Box::new(e.remap_columns(map))),
            Expr::Case {
                when_then,
                else_expr,
            } => Expr::Case {
                when_then: when_then
                    .iter()
                    .map(|(c, v)| (c.remap_columns(map), v.remap_columns(map)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(e.remap_columns(map))),
            },
            Expr::Like { expr, pattern } => Expr::Like {
                expr: Box::new(expr.remap_columns(map)),
                pattern: pattern.clone(),
            },
            Expr::Between { expr, low, high } => Expr::Between {
                expr: Box::new(expr.remap_columns(map)),
                low: Box::new(low.remap_columns(map)),
                high: Box::new(high.remap_columns(map)),
            },
            Expr::Udf { func, args } => Expr::Udf {
                func: func.clone(),
                args: args.iter().map(|a| a.remap_columns(map)).collect(),
            },
        }
    }
}

/// Boolean coercion for predicate contexts.
pub fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

/// Apply an arithmetic operator with numeric coercion. Int op Int stays Int
/// (except Div, which is Float); NULL propagates.
pub fn arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value, ExprError> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            ArithOp::Add => Ok(Value::Int(a.wrapping_add(*b))),
            ArithOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            ArithOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            ArithOp::Div => {
                if *b == 0 {
                    Err(ExprError::DivideByZero)
                } else {
                    Ok(Value::Float(*a as f64 / *b as f64))
                }
            }
            ArithOp::Mod => {
                if *b == 0 {
                    Err(ExprError::DivideByZero)
                } else {
                    Ok(Value::Int(a % b))
                }
            }
        },
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(ExprError::TypeMismatch(format!(
                        "arithmetic on {l} and {r}"
                    )))
                }
            };
            let out = match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => {
                    if b == 0.0 {
                        return Err(ExprError::DivideByZero);
                    }
                    a / b
                }
                ArithOp::Mod => {
                    if b == 0.0 {
                        return Err(ExprError::DivideByZero);
                    }
                    a % b
                }
            };
            Ok(Value::Float(out))
        }
    }
}

/// Apply a comparison operator; NULL on either side yields `false` (filter
/// semantics).
pub fn compare(op: CmpOp, l: &Value, r: &Value) -> Value {
    match l.compare(r) {
        None => Value::Bool(false),
        Some(ord) => {
            let b = match op {
                CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                CmpOp::Neq => ord != std::cmp::Ordering::Equal,
                CmpOp::Lt => ord == std::cmp::Ordering::Less,
                CmpOp::Le => ord != std::cmp::Ordering::Greater,
                CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                CmpOp::Ge => ord != std::cmp::Ordering::Less,
            };
            Value::Bool(b)
        }
    }
}

/// SQL LIKE matching with `%` (any run) and `_` (any single char).
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => {
                // Greedy backtracking over the remainder.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some(b'_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => s.first() == Some(&c) && rec(&s[1..], &p[1..]),
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: Vec<Value>) -> Row {
        Row::new(vals)
    }

    fn ctx() -> EvalContext<'static> {
        EvalContext::batch()
    }

    #[test]
    fn eval_arithmetic() {
        let e = Expr::Arith {
            op: ArithOp::Add,
            left: Box::new(Expr::Col(0)),
            right: Box::new(Expr::Lit(Value::Int(2))),
        };
        let v = e.eval(&row(vec![Value::Int(3)]), &ctx()).unwrap();
        assert_eq!(v, Value::Int(5));
    }

    #[test]
    fn int_div_yields_float() {
        let v = arith(ArithOp::Div, &Value::Int(7), &Value::Int(2)).unwrap();
        assert_eq!(v, Value::Float(3.5));
    }

    #[test]
    fn div_by_zero_errors() {
        assert_eq!(
            arith(ArithOp::Div, &Value::Int(1), &Value::Int(0)),
            Err(ExprError::DivideByZero)
        );
    }

    #[test]
    fn null_propagates_through_arith() {
        assert_eq!(
            arith(ArithOp::Add, &Value::Null, &Value::Int(1)).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn compare_null_is_false() {
        assert_eq!(
            compare(CmpOp::Eq, &Value::Null, &Value::Null),
            Value::Bool(false)
        );
    }

    #[test]
    fn predicate_three_valued_collapse() {
        // NULL AND true → false in filter context.
        let e = Expr::And(
            Box::new(Expr::Lit(Value::Null)),
            Box::new(Expr::Lit(Value::Bool(true))),
        );
        assert!(!e.eval_predicate(&row(vec![]), &ctx()).unwrap());
    }

    #[test]
    fn or_short_circuits() {
        let e = Expr::Or(
            Box::new(Expr::Lit(Value::Bool(true))),
            // Would error if evaluated.
            Box::new(Expr::Arith {
                op: ArithOp::Div,
                left: Box::new(Expr::Lit(Value::Int(1))),
                right: Box::new(Expr::Lit(Value::Int(0))),
            }),
        );
        assert!(e.eval_predicate(&row(vec![]), &ctx()).unwrap());
    }

    #[test]
    fn case_when_falls_through_to_else() {
        let e = Expr::Case {
            when_then: vec![(Expr::Lit(Value::Bool(false)), Expr::Lit(Value::Int(1)))],
            else_expr: Some(Box::new(Expr::Lit(Value::Int(2)))),
        };
        assert_eq!(e.eval(&row(vec![]), &ctx()).unwrap(), Value::Int(2));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("PROMO BURNISHED", "PROMO%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(like_match("anything", "%thing"));
        assert!(like_match("forest green", "%green%"));
    }

    #[test]
    fn between_inclusive() {
        let e = Expr::Between {
            expr: Box::new(Expr::Col(0)),
            low: Box::new(Expr::Lit(Value::Int(1))),
            high: Box::new(Expr::Lit(Value::Int(3))),
        };
        assert!(e.eval_predicate(&row(vec![Value::Int(3)]), &ctx()).unwrap());
        assert!(!e.eval_predicate(&row(vec![Value::Int(4)]), &ctx()).unwrap());
    }

    #[test]
    fn unresolved_ref_errors_in_batch() {
        let r = AggRef {
            agg: 0,
            column: 0,
            key: Arc::from(vec![]),
        };
        let e = Expr::Col(0);
        let err = e.eval(&row(vec![Value::Ref(r)]), &ctx()).unwrap_err();
        assert!(matches!(err, ExprError::UnresolvedRef(_)));
    }

    struct FixedResolver(Value);
    impl RefResolver for FixedResolver {
        fn resolve(&self, _r: &AggRef, mode: RefMode) -> Value {
            match mode {
                RefMode::Current => self.0.clone(),
                RefMode::Trial(i) => Value::Float(i as f64),
            }
        }
    }

    #[test]
    fn ref_resolves_lazily() {
        let r = AggRef {
            agg: 1,
            column: 0,
            key: Arc::from(vec![]),
        };
        let resolver = FixedResolver(Value::Float(35.3));
        let c = EvalContext::with_resolver(&resolver);
        // buffer_time > AVG(buffer_time), where the AVG arrives by lineage ref.
        let e = Expr::Cmp {
            op: CmpOp::Gt,
            left: Box::new(Expr::Col(0)),
            right: Box::new(Expr::Col(1)),
        };
        let t = row(vec![Value::Float(36.0), Value::Ref(r.clone())]);
        assert!(e.eval_predicate(&t, &c).unwrap());
        // Trial mode pulls per-trial values.
        let c2 = c.with_mode(RefMode::Trial(40));
        let t2 = row(vec![Value::Float(36.0), Value::Ref(r)]);
        assert!(!e.eval_predicate(&t2, &c2).unwrap());
    }

    #[test]
    fn remap_columns_rewrites_refs() {
        let e = Expr::Arith {
            op: ArithOp::Mul,
            left: Box::new(Expr::Col(0)),
            right: Box::new(Expr::Col(2)),
        };
        let m = e.remap_columns(&|i| i + 10);
        let mut cols = Vec::new();
        m.referenced_columns(&mut cols);
        assert_eq!(cols, vec![10, 12]);
    }
}
