//! # iolap-engine
//!
//! Batch relational execution engine — the reproduction's stand-in for
//! SparkSQL. Provides:
//!
//! * physical expressions with lazy lineage-dereference hooks ([`expr`]),
//! * multiplicity-weighted aggregate functions and the UDAF trait
//!   ([`aggregate`]),
//! * logical plans with stable aggregate ids ([`plan`]),
//! * a planner with nested-subquery decorrelation ([`planner`]),
//! * the batch executor used as the §8 baseline and as the semantic oracle
//!   for Theorem-1 equivalence tests ([`executor`]), and
//! * the UDF/UDAF registry ([`registry`]).

#![warn(missing_docs)]

pub mod aggregate;
pub mod executor;
pub mod expr;
pub mod plan;
pub mod planner;
pub mod registry;

pub use aggregate::{
    Accumulator, AggKind, AggregateFunction, AvgAcc, BuiltinAgg, CountAcc, SumAcc, Udaf,
};
pub use executor::{execute, execute_with, EngineError};
pub use expr::{ArithOp, CmpOp, EvalContext, Expr, ExprError, RefMode, RefResolver, ScalarUdf};
pub use plan::{AggCall, Plan};
pub use planner::{infer_type, plan_query, plan_sql, PlanError, PlannedQuery};
pub use registry::FunctionRegistry;
