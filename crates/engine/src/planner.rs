//! Planner: SQL AST → logical [`Plan`].
//!
//! Nested subqueries — the query class that motivates iOLAP (§1, Example 1)
//! — are compiled into joins:
//!
//! * An **uncorrelated scalar subquery** becomes an `Aggregate` subplan
//!   cross-joined into the outer block, exactly the shape of the paper's
//!   Figure 2(a) SBI plan (operators ①–⑤).
//! * A **correlated scalar subquery** (TPC-H Q17/Q20 style) is decorrelated:
//!   its correlation equi-predicates become group-by columns of the inner
//!   aggregate, which is then equi-joined with the outer block.
//! * `IN (SELECT …)` becomes a semi-join.
//!
//! The join that carries an inner aggregate's result into the outer block is
//! the *lineage-block boundary* of §6.1; the iOLAP rewriter later replaces
//! the carried value with a lineage reference.

use crate::aggregate::{builtin_agg, AggKind};
use crate::expr::{ArithOp, CmpOp, Expr};
use crate::plan::{AggCall, Plan};
use crate::registry::FunctionRegistry;
use iolap_relation::{Catalog, DataType, Field, Schema, SchemaError, Value};
use iolap_sql::ast::{self, BinaryOp, Query, SelectBlock, SelectItem, UnaryOp};
use std::collections::HashMap;
use std::fmt;

/// Planner errors.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// Name resolution failure.
    Schema(SchemaError),
    /// Unknown table.
    Catalog(String),
    /// Unknown function.
    UnknownFunction(String),
    /// Valid SQL outside the supported class.
    Unsupported(String),
    /// Structurally invalid query.
    Invalid(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Schema(e) => write!(f, "{e}"),
            PlanError::Catalog(t) => write!(f, "unknown table `{t}`"),
            PlanError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            PlanError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            PlanError::Invalid(m) => write!(f, "invalid query: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A fully planned query.
#[derive(Clone, Debug)]
pub struct PlannedQuery {
    /// Root plan node.
    pub plan: Plan,
    /// Output column names, aligned with the root schema.
    pub output_names: Vec<String>,
}

/// Plan a parsed query against a catalog and function registry.
pub fn plan_query(
    q: &Query,
    catalog: &Catalog,
    registry: &FunctionRegistry,
) -> Result<PlannedQuery, PlanError> {
    Planner {
        catalog,
        registry,
        next_agg_id: 0,
        next_sub_id: 0,
    }
    .plan(q)
}

/// Convenience: parse + plan SQL text.
pub fn plan_sql(
    sql: &str,
    catalog: &Catalog,
    registry: &FunctionRegistry,
) -> Result<PlannedQuery, PlanError> {
    let stmt =
        iolap_sql::parse(sql).map_err(|e| PlanError::Invalid(format!("parse error: {e}")))?;
    let iolap_sql::Statement::Query(q) = stmt;
    plan_query(&q, catalog, registry)
}

struct Planner<'a> {
    catalog: &'a Catalog,
    registry: &'a FunctionRegistry,
    next_agg_id: u32,
    next_sub_id: u32,
}

/// Output of planning one SELECT block.
struct BlockOutput {
    plan: Plan,
    names: Vec<String>,
    /// Compiled outer-side correlation keys (against the outer schema this
    /// block was planned under). Empty when uncorrelated.
    corr_outer: Vec<Expr>,
    /// Number of leading correlation columns in this block's output.
    corr_width: usize,
    /// Whether the block provably yields a single row (global aggregate).
    single_row: bool,
}

impl<'a> Planner<'a> {
    fn plan(&mut self, q: &Query) -> Result<PlannedQuery, PlanError> {
        // For single-block queries, ORDER BY may reference non-projected
        // input columns, so sorting happens inside the block (below the
        // final projection). Unions sort on output columns only.
        let single_order = if q.branches.len() == 1 {
            Some((&q.order_by[..], q.limit))
        } else {
            None
        };
        let mut blocks = Vec::with_capacity(q.branches.len());
        for b in &q.branches {
            blocks.push(self.plan_block_ordered(b, None, single_order)?);
        }
        let names = blocks[0].names.clone();
        for b in &blocks[1..] {
            if b.names.len() != names.len() {
                return Err(PlanError::Invalid(
                    "UNION ALL branches have different arities".into(),
                ));
            }
        }
        let mut plan = if blocks.len() == 1 {
            blocks.pop().unwrap().plan
        } else {
            Plan::Union {
                inputs: blocks.into_iter().map(|b| b.plan).collect(),
            }
        };
        if single_order.is_none() && (!q.order_by.is_empty() || q.limit.is_some()) {
            let out_schema = plan.schema().clone();
            let keys = q
                .order_by
                .iter()
                .map(|o| {
                    Ok((
                        self.compile_expr(&o.expr, &out_schema, &HashMap::new())?,
                        o.asc,
                    ))
                })
                .collect::<Result<Vec<_>, PlanError>>()?;
            plan = Plan::Sort {
                input: Box::new(plan),
                keys,
                limit: q.limit,
            };
        }
        Ok(PlannedQuery {
            plan,
            output_names: names,
        })
    }

    /// Plan one SELECT block. `outer` is the enclosing block's schema when
    /// this is a subquery (enables correlation). `order_limit`, when
    /// present, is applied below the final projection so sort keys can
    /// reference non-projected columns.
    fn plan_block_ordered(
        &mut self,
        b: &SelectBlock,
        outer: Option<&Schema>,
        order_limit: Option<(&[ast::OrderItem], Option<u64>)>,
    ) -> Result<BlockOutput, PlanError> {
        if b.from.is_empty() {
            return Err(PlanError::Unsupported("SELECT without FROM".into()));
        }

        // ------------------------------------------------------- FROM scans
        let mut table_schemas = Vec::new();
        let mut table_plans = Vec::new();
        for t in &b.from {
            let base = self
                .catalog
                .schema(&t.name)
                .map_err(|_| PlanError::Catalog(t.name.clone()))?;
            let schema = base.with_qualifier(t.effective_name());
            table_schemas.push(schema.clone());
            table_plans.push(Plan::Scan {
                table: t.name.clone(),
                schema,
            });
        }
        let combined = table_schemas
            .iter()
            .skip(1)
            .fold(table_schemas[0].clone(), |acc, s| acc.join(s));

        // ------------------------------------------------ conjunct analysis
        let mut conjuncts: Vec<ast::Expr> = Vec::new();
        for p in &b.join_predicates {
            split_and(p, &mut conjuncts);
        }
        if let Some(w) = &b.where_clause {
            split_and(w, &mut conjuncts);
        }

        let mut pushdown: Vec<ast::Expr> = Vec::new(); // single-table
        let mut equi: Vec<ast::Expr> = Vec::new(); // cross-table equi
        let mut residual: Vec<ast::Expr> = Vec::new(); // other local
        let mut with_subs: Vec<ast::Expr> = Vec::new(); // contain subqueries
        let mut correlated: Vec<(ast::Expr, Expr)> = Vec::new(); // (local side AST, outer key)

        for c in conjuncts {
            if contains_subquery(&c) {
                with_subs.push(c);
                continue;
            }
            match self.try_compile(&c, &combined) {
                Ok(_) => {
                    // Resolves locally: single-table pushdown?
                    let single = table_schemas
                        .iter()
                        .position(|s| self.try_compile(&c, s).is_ok());
                    if let Some(_i) = single {
                        pushdown.push(c);
                    } else if is_equi(&c) {
                        equi.push(c);
                    } else {
                        residual.push(c);
                    }
                }
                Err(PlanError::Schema(SchemaError::NotFound(_))) => {
                    // Try correlated equi-predicate: local = outer.
                    let outer_schema =
                        outer.ok_or_else(|| self.try_compile(&c, &combined).unwrap_err())?;
                    let (local_ast, outer_key) =
                        self.split_correlated(&c, &combined, outer_schema)?;
                    correlated.push((local_ast, outer_key));
                }
                Err(e) => return Err(e),
            }
        }

        // Push single-table predicates below the joins.
        for c in pushdown {
            let i = table_schemas
                .iter()
                .position(|s| self.try_compile(&c, s).is_ok())
                .expect("classified as single-table");
            let pred = self.compile_expr(&c, &table_schemas[i], &HashMap::new())?;
            let input = std::mem::replace(
                &mut table_plans[i],
                Plan::Union { inputs: vec![] }, // placeholder
            );
            table_plans[i] = Plan::Select {
                input: Box::new(input),
                predicate: pred,
            };
        }

        // ------------------------------------------------------- join tree
        let mut iter = table_plans.into_iter();
        let mut plan = iter.next().unwrap();
        let mut cum_schema = table_schemas[0].clone();
        for (ti, right) in iter.enumerate() {
            let right_schema = &table_schemas[ti + 1];
            let mut left_keys = Vec::new();
            let mut right_keys = Vec::new();
            equi.retain(
                |c| match self.extract_join_keys(c, &cum_schema, right_schema) {
                    Some((lk, rk)) => {
                        left_keys.push(lk);
                        right_keys.push(rk);
                        false
                    }
                    None => true,
                },
            );
            let schema = cum_schema.join(right_schema);
            plan = Plan::Join {
                left: Box::new(plan),
                right: Box::new(right),
                left_keys,
                right_keys,
                schema: schema.clone(),
            };
            cum_schema = schema;
        }
        // Unconsumed equi conjuncts (e.g. referencing 3 tables) filter on top.
        residual.extend(equi);
        for c in &residual {
            let pred = self.compile_expr(c, &cum_schema, &HashMap::new())?;
            plan = Plan::Select {
                input: Box::new(plan),
                predicate: pred,
            };
        }

        // -------------------------------------------------- WHERE subqueries
        let (mut plan, cum_schema) = self.attach_subquery_conjuncts(plan, cum_schema, with_subs)?;

        // ----------------------------------------------- aggregation + SELECT
        // Expand wildcards against the FROM schema (not subquery columns).
        let mut items: Vec<(ast::Expr, Option<String>)> = Vec::new();
        for it in &b.items {
            match it {
                SelectItem::Wildcard => {
                    for f in combined.fields() {
                        items.push((
                            ast::Expr::Column {
                                qualifier: f.qualifier.clone(),
                                name: f.name.clone(),
                            },
                            Some(f.name.clone()),
                        ));
                    }
                }
                SelectItem::Expr { expr, alias } => items.push((expr.clone(), alias.clone())),
            }
        }

        // Correlation columns join the group-by list.
        let corr_group: Vec<ast::Expr> = correlated.iter().map(|(l, _)| l.clone()).collect();
        let corr_outer: Vec<Expr> = correlated.into_iter().map(|(_, o)| o).collect();
        let corr_width = corr_group.len();

        let mut agg_calls: Vec<(String, ast::Expr, AggKind, bool)> = Vec::new(); // (key, arg, kind, distinct)
        for (e, _) in &items {
            self.collect_aggregates(e, &mut agg_calls)?;
        }
        if let Some(h) = &b.having {
            self.collect_aggregates(h, &mut agg_calls)?;
        }

        let has_agg = !agg_calls.is_empty() || !b.group_by.is_empty() || corr_width > 0;
        if !has_agg {
            if b.having.is_some() {
                return Err(PlanError::Invalid("HAVING without aggregation".into()));
            }
            plan = self.apply_order_limit(plan, &cum_schema, &items, order_limit, None)?;
            // Plain projection.
            let mut exprs = Vec::new();
            let mut fields = Vec::new();
            let mut names = Vec::new();
            for (e, alias) in &items {
                let pe = self.compile_expr(e, &cum_schema, &HashMap::new())?;
                let name = alias.clone().unwrap_or_else(|| display_name(e));
                fields.push(Field::new(name.clone(), infer_type(&pe, &cum_schema)));
                names.push(name);
                exprs.push(pe);
            }
            let schema = Schema::new(fields);
            let plan = Plan::Project {
                input: Box::new(plan),
                exprs,
                schema,
            };
            return Ok(BlockOutput {
                plan,
                names,
                corr_outer,
                corr_width: 0,
                single_row: false,
            });
        }

        // Group expressions: correlation columns first, then user GROUP BY.
        let mut group_asts: Vec<ast::Expr> = corr_group;
        for g in &b.group_by {
            // GROUP BY may name a select alias.
            let resolved = items
                .iter()
                .find(|(_, alias)| match (alias, g) {
                    (
                        Some(a),
                        ast::Expr::Column {
                            qualifier: None,
                            name,
                        },
                    ) => a.eq_ignore_ascii_case(name),
                    _ => false,
                })
                .map(|(e, _)| e.clone())
                .unwrap_or_else(|| g.clone());
            if !group_asts.contains(&resolved) {
                group_asts.push(resolved);
            }
        }

        // Pre-projection: group exprs then aggregate arguments.
        let mut pre_exprs = Vec::new();
        let mut pre_fields = Vec::new();
        for (i, g) in group_asts.iter().enumerate() {
            let pe = self.compile_expr(g, &cum_schema, &HashMap::new())?;
            pre_fields.push(Field::new(format!("__g{i}"), infer_type(&pe, &cum_schema)));
            pre_exprs.push(pe);
        }
        for (i, (_, arg, _, _)) in agg_calls.iter().enumerate() {
            let pe = self.compile_expr(arg, &cum_schema, &HashMap::new())?;
            pre_fields.push(Field::new(
                format!("__arg{i}"),
                infer_type(&pe, &cum_schema),
            ));
            pre_exprs.push(pe);
        }
        let pre_schema = Schema::new(pre_fields);
        plan = Plan::Project {
            input: Box::new(plan),
            exprs: pre_exprs,
            schema: pre_schema.clone(),
        };

        // Aggregate node.
        let g = group_asts.len();
        let mut agg_fields: Vec<Field> = (0..g).map(|i| pre_schema.field(i).clone()).collect();
        let mut calls = Vec::new();
        for (i, (_, _, kind, _)) in agg_calls.iter().enumerate() {
            let input_ty = pre_schema.field(g + i).data_type;
            agg_fields.push(Field::new(format!("__a{i}"), kind.return_type(input_ty)));
            calls.push(AggCall {
                kind: kind.clone(),
                input: Expr::Col(g + i),
                name: format!("__a{i}"),
            });
        }
        let agg_schema = Schema::new(agg_fields);
        let agg_id = self.next_agg_id;
        self.next_agg_id += 1;
        plan = Plan::Aggregate {
            input: Box::new(plan),
            group_cols: (0..g).collect(),
            aggs: calls,
            schema: agg_schema.clone(),
            agg_id,
        };
        let mut post_schema = agg_schema;

        // Substitution table for post-aggregation expression rewriting.
        let agg_keys: Vec<String> = agg_calls.iter().map(|(k, _, _, _)| k.clone()).collect();

        // HAVING: may itself contain uncorrelated scalar subqueries.
        if let Some(h) = &b.having {
            let mut having_conjuncts = Vec::new();
            split_and(h, &mut having_conjuncts);
            let mut plain = Vec::new();
            let mut subs = Vec::new();
            for c in having_conjuncts {
                let rewritten = rewrite_post_agg(&c, &group_asts, &agg_keys);
                if contains_subquery(&rewritten) {
                    subs.push(rewritten);
                } else {
                    plain.push(rewritten);
                }
            }
            for c in &plain {
                let pred = self.compile_expr(c, &post_schema, &HashMap::new())?;
                plan = Plan::Select {
                    input: Box::new(plan),
                    predicate: pred,
                };
            }
            let (p2, s2) = self.attach_subquery_conjuncts(plan, post_schema, subs)?;
            plan = p2;
            post_schema = s2;
        }

        plan = self.apply_order_limit(
            plan,
            &post_schema,
            &items,
            order_limit,
            Some((&group_asts, &agg_keys)),
        )?;

        // Final projection: correlation columns (for the decorrelating join)
        // then the select items.
        let mut exprs: Vec<Expr> = (0..corr_width).map(Expr::Col).collect();
        let mut fields: Vec<Field> = (0..corr_width)
            .map(|i| post_schema.field(i).clone())
            .collect();
        let mut names: Vec<String> = Vec::new();
        for (e, alias) in &items {
            let rewritten = rewrite_post_agg(e, &group_asts, &agg_keys);
            let pe = self.compile_expr(&rewritten, &post_schema, &HashMap::new())?;
            let name = alias.clone().unwrap_or_else(|| display_name(e));
            fields.push(Field::new(name.clone(), infer_type(&pe, &post_schema)));
            names.push(name);
            exprs.push(pe);
        }
        let schema = Schema::new(fields);
        plan = Plan::Project {
            input: Box::new(plan),
            exprs,
            schema,
        };

        Ok(BlockOutput {
            plan,
            names,
            corr_outer,
            corr_width,
            single_row: g == 0,
        })
    }

    /// Insert a `Sort` below the final projection. Order keys may reference
    /// select-item aliases (substituted by their defining expressions) or
    /// any column of the pre-projection schema; in aggregated blocks they
    /// are rewritten through the aggregate output first.
    fn apply_order_limit(
        &mut self,
        plan: Plan,
        schema: &Schema,
        items: &[(ast::Expr, Option<String>)],
        order_limit: Option<(&[ast::OrderItem], Option<u64>)>,
        agg_rewrite: Option<(&[ast::Expr], &[String])>,
    ) -> Result<Plan, PlanError> {
        let Some((order, limit)) = order_limit else {
            return Ok(plan);
        };
        if order.is_empty() && limit.is_none() {
            return Ok(plan);
        }
        let mut keys = Vec::with_capacity(order.len());
        for o in order {
            let mut ast_expr = substitute_alias(&o.expr, items);
            if let Some((groups, agg_keys)) = agg_rewrite {
                ast_expr = rewrite_post_agg(&ast_expr, groups, agg_keys);
            }
            keys.push((
                self.compile_expr(&ast_expr, schema, &HashMap::new())?,
                o.asc,
            ));
        }
        Ok(Plan::Sort {
            input: Box::new(plan),
            keys,
            limit,
        })
    }

    /// Attach subquery-bearing conjuncts to `plan`: joins for scalar
    /// subqueries, semi-joins for `IN`, then residual filters.
    fn attach_subquery_conjuncts(
        &mut self,
        mut plan: Plan,
        mut cum_schema: Schema,
        conjuncts: Vec<ast::Expr>,
    ) -> Result<(Plan, Schema), PlanError> {
        for c in conjuncts {
            // Whole-conjunct IN (SELECT …) becomes a semi-join.
            if let ast::Expr::InSubquery { expr, subquery } = &c {
                let sub = self.plan(subquery)?;
                if sub.output_names.len() != 1 {
                    return Err(PlanError::Invalid(
                        "IN subquery must produce exactly one column".into(),
                    ));
                }
                let probe = self.compile_expr(expr, &cum_schema, &HashMap::new())?;
                plan = Plan::SemiJoin {
                    left: Box::new(plan),
                    right: Box::new(sub.plan),
                    left_keys: vec![probe],
                    right_keys: vec![Expr::Col(0)],
                };
                continue;
            }
            // Scalar subqueries inside a comparison: join each in, then
            // filter with the rewritten predicate.
            let (rewritten, attachments) = self.extract_scalar_subqueries(&c)?;
            for (marker, sub_q) in attachments {
                let sub = self.plan_block_ordered(&sub_q.branches[0], Some(&cum_schema), None)?;
                if sub_q.branches.len() != 1 {
                    return Err(PlanError::Unsupported(
                        "UNION inside scalar subquery".into(),
                    ));
                }
                let value_cols = sub.names.len();
                if value_cols != 1 {
                    return Err(PlanError::Invalid(
                        "scalar subquery must produce exactly one column".into(),
                    ));
                }
                if sub.corr_width == 0 && !sub.single_row {
                    return Err(PlanError::Unsupported(
                        "uncorrelated scalar subquery must be a global aggregate".into(),
                    ));
                }
                // Rename the sub output so the marker resolves: corr cols keep
                // synthetic names; the value column becomes `__sub.cN`.
                let mut fields: Vec<Field> = sub
                    .plan
                    .schema()
                    .fields()
                    .iter()
                    .cloned()
                    .enumerate()
                    .map(|(i, f)| {
                        if i == sub.corr_width {
                            Field::qualified("__sub", marker.clone(), f.data_type)
                        } else {
                            Field::new(format!("__corr_{marker}_{i}"), f.data_type)
                        }
                    })
                    .collect();
                // (exactly corr_width + 1 columns)
                fields.truncate(sub.corr_width + 1);
                let sub_schema = Schema::new(fields);
                let sub_plan = reschema(sub.plan, sub_schema.clone());
                let right_keys: Vec<Expr> = (0..sub.corr_width).map(Expr::Col).collect();
                let schema = cum_schema.join(&sub_schema);
                plan = Plan::Join {
                    left: Box::new(plan),
                    right: Box::new(sub_plan),
                    left_keys: sub.corr_outer,
                    right_keys,
                    schema: schema.clone(),
                };
                cum_schema = schema;
            }
            let pred = self.compile_expr(&rewritten, &cum_schema, &HashMap::new())?;
            plan = Plan::Select {
                input: Box::new(plan),
                predicate: pred,
            };
        }
        Ok((plan, cum_schema))
    }

    /// Replace every `ScalarSubquery` in `e` with a marker column
    /// `__sub.cN`, returning the rewritten expression and the extracted
    /// subqueries.
    fn extract_scalar_subqueries(
        &mut self,
        e: &ast::Expr,
    ) -> Result<(ast::Expr, Vec<(String, Query)>), PlanError> {
        let mut out = Vec::new();
        let rewritten = self.extract_rec(e, &mut out)?;
        Ok((rewritten, out))
    }

    fn extract_rec(
        &mut self,
        e: &ast::Expr,
        out: &mut Vec<(String, Query)>,
    ) -> Result<ast::Expr, PlanError> {
        Ok(match e {
            ast::Expr::ScalarSubquery(q) => {
                let marker = format!("c{}", self.next_sub_id);
                self.next_sub_id += 1;
                out.push((marker.clone(), (**q).clone()));
                ast::Expr::Column {
                    qualifier: Some("__sub".into()),
                    name: marker,
                }
            }
            ast::Expr::InSubquery { .. } => {
                return Err(PlanError::Unsupported(
                    "IN (SELECT …) must be a top-level conjunct".into(),
                ))
            }
            ast::Expr::Unary { op, expr } => ast::Expr::Unary {
                op: *op,
                expr: Box::new(self.extract_rec(expr, out)?),
            },
            ast::Expr::Binary { left, op, right } => ast::Expr::Binary {
                left: Box::new(self.extract_rec(left, out)?),
                op: *op,
                right: Box::new(self.extract_rec(right, out)?),
            },
            ast::Expr::Function {
                name,
                args,
                distinct,
            } => ast::Expr::Function {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| self.extract_rec(a, out))
                    .collect::<Result<_, _>>()?,
                distinct: *distinct,
            },
            ast::Expr::Between { expr, low, high } => ast::Expr::Between {
                expr: Box::new(self.extract_rec(expr, out)?),
                low: Box::new(self.extract_rec(low, out)?),
                high: Box::new(self.extract_rec(high, out)?),
            },
            ast::Expr::Case {
                when_then,
                else_expr,
            } => ast::Expr::Case {
                when_then: when_then
                    .iter()
                    .map(|(c, v)| Ok((self.extract_rec(c, out)?, self.extract_rec(v, out)?)))
                    .collect::<Result<_, PlanError>>()?,
                else_expr: match else_expr {
                    Some(x) => Some(Box::new(self.extract_rec(x, out)?)),
                    None => None,
                },
            },
            other => other.clone(),
        })
    }

    /// Split a correlated conjunct `local = outer` (either order) into the
    /// local AST side and the compiled outer key.
    fn split_correlated(
        &mut self,
        c: &ast::Expr,
        local: &Schema,
        outer: &Schema,
    ) -> Result<(ast::Expr, Expr), PlanError> {
        if let ast::Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = c
        {
            for (a, b) in [(left, right), (right, left)] {
                if self.try_compile(a, local).is_ok() {
                    if let Ok(outer_key) = self.try_compile(b, outer) {
                        return Ok(((**a).clone(), outer_key));
                    }
                }
            }
        }
        Err(PlanError::Unsupported(format!(
            "correlated predicate must be an equality `inner_col = outer_col`; got {c:?}"
        )))
    }

    fn extract_join_keys(
        &mut self,
        c: &ast::Expr,
        left: &Schema,
        right: &Schema,
    ) -> Option<(Expr, Expr)> {
        if let ast::Expr::Binary {
            left: a,
            op: BinaryOp::Eq,
            right: b,
        } = c
        {
            for (x, y) in [(a, b), (b, a)] {
                if let (Ok(lk), Ok(rk)) = (self.try_compile(x, left), self.try_compile(y, right)) {
                    return Some((lk, rk));
                }
            }
        }
        None
    }

    fn try_compile(&mut self, e: &ast::Expr, schema: &Schema) -> Result<Expr, PlanError> {
        self.compile_expr(e, schema, &HashMap::new())
    }

    /// Collect aggregate calls in `e` (not descending into subqueries),
    /// deduplicated by structural key.
    fn collect_aggregates(
        &mut self,
        e: &ast::Expr,
        out: &mut Vec<(String, ast::Expr, AggKind, bool)>,
    ) -> Result<(), PlanError> {
        match e {
            ast::Expr::Function {
                name,
                args,
                distinct,
            } => {
                let kind = if let Some(b) = builtin_agg(name, *distinct) {
                    Some(AggKind::Builtin(b))
                } else {
                    self.registry.udaf(name).map(AggKind::Udaf)
                };
                if let Some(kind) = kind {
                    if args.len() > 1 {
                        return Err(PlanError::Unsupported(format!(
                            "aggregate {name} with multiple arguments"
                        )));
                    }
                    let arg = args
                        .first()
                        .cloned()
                        .unwrap_or(ast::Expr::Literal(Value::Int(1)));
                    let key = agg_key(name, *distinct, &arg);
                    if !out.iter().any(|(k, _, _, _)| *k == key) {
                        out.push((key, arg, kind, *distinct));
                    }
                    return Ok(());
                }
                for a in args {
                    self.collect_aggregates(a, out)?;
                }
                Ok(())
            }
            ast::Expr::Unary { expr, .. } => self.collect_aggregates(expr, out),
            ast::Expr::Binary { left, right, .. } => {
                self.collect_aggregates(left, out)?;
                self.collect_aggregates(right, out)
            }
            ast::Expr::Between { expr, low, high } => {
                self.collect_aggregates(expr, out)?;
                self.collect_aggregates(low, out)?;
                self.collect_aggregates(high, out)
            }
            ast::Expr::Case {
                when_then,
                else_expr,
            } => {
                for (c, v) in when_then {
                    self.collect_aggregates(c, out)?;
                    self.collect_aggregates(v, out)?;
                }
                if let Some(x) = else_expr {
                    self.collect_aggregates(x, out)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Compile an AST expression against a schema.
    fn compile_expr(
        &mut self,
        e: &ast::Expr,
        schema: &Schema,
        subs: &HashMap<String, usize>,
    ) -> Result<Expr, PlanError> {
        Ok(match e {
            ast::Expr::Column { qualifier, name } => {
                if let Some(idx) = subs.get(name) {
                    return Ok(Expr::Col(*idx));
                }
                let idx = schema
                    .index_of(qualifier.as_deref(), name)
                    .map_err(PlanError::Schema)?;
                Expr::Col(idx)
            }
            ast::Expr::Literal(v) => Expr::Lit(v.clone()),
            ast::Expr::Unary { op, expr } => {
                let inner = self.compile_expr(expr, schema, subs)?;
                match op {
                    UnaryOp::Neg => Expr::Neg(Box::new(inner)),
                    UnaryOp::Not => Expr::Not(Box::new(inner)),
                }
            }
            ast::Expr::Binary { left, op, right } => {
                let l = Box::new(self.compile_expr(left, schema, subs)?);
                let r = Box::new(self.compile_expr(right, schema, subs)?);
                match op {
                    BinaryOp::Add => Expr::Arith {
                        op: ArithOp::Add,
                        left: l,
                        right: r,
                    },
                    BinaryOp::Sub => Expr::Arith {
                        op: ArithOp::Sub,
                        left: l,
                        right: r,
                    },
                    BinaryOp::Mul => Expr::Arith {
                        op: ArithOp::Mul,
                        left: l,
                        right: r,
                    },
                    BinaryOp::Div => Expr::Arith {
                        op: ArithOp::Div,
                        left: l,
                        right: r,
                    },
                    BinaryOp::Mod => Expr::Arith {
                        op: ArithOp::Mod,
                        left: l,
                        right: r,
                    },
                    BinaryOp::Eq => Expr::Cmp {
                        op: CmpOp::Eq,
                        left: l,
                        right: r,
                    },
                    BinaryOp::Neq => Expr::Cmp {
                        op: CmpOp::Neq,
                        left: l,
                        right: r,
                    },
                    BinaryOp::Lt => Expr::Cmp {
                        op: CmpOp::Lt,
                        left: l,
                        right: r,
                    },
                    BinaryOp::Le => Expr::Cmp {
                        op: CmpOp::Le,
                        left: l,
                        right: r,
                    },
                    BinaryOp::Gt => Expr::Cmp {
                        op: CmpOp::Gt,
                        left: l,
                        right: r,
                    },
                    BinaryOp::Ge => Expr::Cmp {
                        op: CmpOp::Ge,
                        left: l,
                        right: r,
                    },
                    BinaryOp::And => Expr::And(l, r),
                    BinaryOp::Or => Expr::Or(l, r),
                }
            }
            ast::Expr::Function { name, args, .. } => {
                if builtin_agg(name, false).is_some() || self.registry.udaf(name).is_some() {
                    return Err(PlanError::Invalid(format!(
                        "aggregate {name} not allowed in this context"
                    )));
                }
                let func = self
                    .registry
                    .scalar(name)
                    .ok_or_else(|| PlanError::UnknownFunction(name.clone()))?;
                Expr::Udf {
                    func,
                    args: args
                        .iter()
                        .map(|a| self.compile_expr(a, schema, subs))
                        .collect::<Result<_, _>>()?,
                }
            }
            ast::Expr::Between { expr, low, high } => Expr::Between {
                expr: Box::new(self.compile_expr(expr, schema, subs)?),
                low: Box::new(self.compile_expr(low, schema, subs)?),
                high: Box::new(self.compile_expr(high, schema, subs)?),
            },
            ast::Expr::Like { expr, pattern } => Expr::Like {
                expr: Box::new(self.compile_expr(expr, schema, subs)?),
                pattern: pattern.as_str().into(),
            },
            ast::Expr::Case {
                when_then,
                else_expr,
            } => Expr::Case {
                when_then: when_then
                    .iter()
                    .map(|(c, v)| {
                        Ok((
                            self.compile_expr(c, schema, subs)?,
                            self.compile_expr(v, schema, subs)?,
                        ))
                    })
                    .collect::<Result<_, PlanError>>()?,
                else_expr: match else_expr {
                    Some(x) => Some(Box::new(self.compile_expr(x, schema, subs)?)),
                    None => None,
                },
            },
            ast::Expr::ScalarSubquery(_) | ast::Expr::InSubquery { .. } => {
                return Err(PlanError::Unsupported(
                    "subquery in this position (only WHERE/HAVING comparisons are supported)"
                        .into(),
                ))
            }
        })
    }
}

/// Replace aggregate calls and group-by expressions with references to the
/// aggregate output's synthetic columns (`__gN`, `__aN`).
fn rewrite_post_agg(e: &ast::Expr, groups: &[ast::Expr], agg_keys: &[String]) -> ast::Expr {
    if let Some(i) = groups.iter().position(|g| g == e) {
        return ast::Expr::Column {
            qualifier: None,
            name: format!("__g{i}"),
        };
    }
    if let ast::Expr::Function {
        name,
        args,
        distinct,
    } = e
    {
        let arg = args
            .first()
            .cloned()
            .unwrap_or(ast::Expr::Literal(Value::Int(1)));
        let key = agg_key(name, *distinct, &arg);
        if let Some(i) = agg_keys.iter().position(|k| *k == key) {
            return ast::Expr::Column {
                qualifier: None,
                name: format!("__a{i}"),
            };
        }
    }
    match e {
        ast::Expr::Unary { op, expr } => ast::Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_post_agg(expr, groups, agg_keys)),
        },
        ast::Expr::Binary { left, op, right } => ast::Expr::Binary {
            left: Box::new(rewrite_post_agg(left, groups, agg_keys)),
            op: *op,
            right: Box::new(rewrite_post_agg(right, groups, agg_keys)),
        },
        ast::Expr::Function {
            name,
            args,
            distinct,
        } => ast::Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| rewrite_post_agg(a, groups, agg_keys))
                .collect(),
            distinct: *distinct,
        },
        ast::Expr::Between { expr, low, high } => ast::Expr::Between {
            expr: Box::new(rewrite_post_agg(expr, groups, agg_keys)),
            low: Box::new(rewrite_post_agg(low, groups, agg_keys)),
            high: Box::new(rewrite_post_agg(high, groups, agg_keys)),
        },
        ast::Expr::Case {
            when_then,
            else_expr,
        } => ast::Expr::Case {
            when_then: when_then
                .iter()
                .map(|(c, v)| {
                    (
                        rewrite_post_agg(c, groups, agg_keys),
                        rewrite_post_agg(v, groups, agg_keys),
                    )
                })
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|x| Box::new(rewrite_post_agg(x, groups, agg_keys))),
        },
        other => other.clone(),
    }
}

fn agg_key(name: &str, distinct: bool, arg: &ast::Expr) -> String {
    format!("{name}:{distinct}:{arg:?}")
}

/// Split an AND tree into conjuncts.
fn split_and(e: &ast::Expr, out: &mut Vec<ast::Expr>) {
    if let ast::Expr::Binary {
        left,
        op: BinaryOp::And,
        right,
    } = e
    {
        split_and(left, out);
        split_and(right, out);
    } else {
        out.push(e.clone());
    }
}

fn contains_subquery(e: &ast::Expr) -> bool {
    let mut found = false;
    e.walk(&mut |x| {
        if matches!(
            x,
            ast::Expr::ScalarSubquery(_) | ast::Expr::InSubquery { .. }
        ) {
            found = true;
        }
    });
    found
}

fn is_equi(e: &ast::Expr) -> bool {
    matches!(
        e,
        ast::Expr::Binary {
            op: BinaryOp::Eq,
            ..
        }
    )
}

/// If `e` is a bare column naming a select-item alias, substitute the
/// item's defining expression (SQL ORDER BY alias resolution).
fn substitute_alias(e: &ast::Expr, items: &[(ast::Expr, Option<String>)]) -> ast::Expr {
    if let ast::Expr::Column {
        qualifier: None,
        name,
    } = e
    {
        for (expr, alias) in items {
            if alias
                .as_deref()
                .is_some_and(|a| a.eq_ignore_ascii_case(name))
            {
                return expr.clone();
            }
        }
    }
    e.clone()
}

/// Human-readable output name for an unaliased projection.
fn display_name(e: &ast::Expr) -> String {
    match e {
        ast::Expr::Column { name, .. } => name.clone(),
        ast::Expr::Function { name, args, .. } => {
            let inner = args.iter().map(display_name).collect::<Vec<_>>().join(",");
            format!("{name}({inner})")
        }
        ast::Expr::Literal(v) => v.to_string(),
        ast::Expr::Binary { left, op, right } => {
            format!("{}{op}{}", display_name(left), display_name(right))
        }
        _ => "expr".into(),
    }
}

/// Wrap `plan` so its output schema is replaced with `schema` (same arity).
fn reschema(plan: Plan, schema: Schema) -> Plan {
    let exprs = (0..schema.len()).map(Expr::Col).collect();
    Plan::Project {
        input: Box::new(plan),
        exprs,
        schema,
    }
}

/// Infer a physical expression's result type.
pub fn infer_type(e: &Expr, schema: &Schema) -> DataType {
    match e {
        Expr::Col(i) => schema.field(*i).data_type,
        Expr::Lit(v) => v.data_type(),
        Expr::Arith { op, left, right } => {
            let (lt, rt) = (infer_type(left, schema), infer_type(right, schema));
            if *op != ArithOp::Div && lt == DataType::Int && rt == DataType::Int {
                DataType::Int
            } else {
                DataType::Float
            }
        }
        Expr::Cmp { .. }
        | Expr::And(..)
        | Expr::Or(..)
        | Expr::Not(_)
        | Expr::Like { .. }
        | Expr::Between { .. } => DataType::Bool,
        Expr::Neg(inner) => infer_type(inner, schema),
        Expr::Case {
            when_then,
            else_expr,
        } => when_then
            .first()
            .map(|(_, v)| infer_type(v, schema))
            .or_else(|| else_expr.as_ref().map(|x| infer_type(x, schema)))
            .unwrap_or(DataType::Null),
        Expr::Udf { func, args } => {
            let tys: Vec<DataType> = args.iter().map(|a| infer_type(a, schema)).collect();
            func.return_type(&tys)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute;
    use iolap_relation::Relation;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "sessions",
            Relation::from_values(
                Schema::from_pairs(&[
                    ("session_id", DataType::Int),
                    ("buffer_time", DataType::Float),
                    ("play_time", DataType::Float),
                    ("city", DataType::Str),
                ]),
                vec![
                    vec![1.into(), 36.0.into(), 238.0.into(), "SF".into()],
                    vec![2.into(), 58.0.into(), 135.0.into(), "SF".into()],
                    vec![3.into(), 17.0.into(), 617.0.into(), "LA".into()],
                    vec![4.into(), 56.0.into(), 194.0.into(), "LA".into()],
                    vec![5.into(), 19.0.into(), 308.0.into(), "SF".into()],
                    vec![6.into(), 26.0.into(), 319.0.into(), "LA".into()],
                ],
            ),
        );
        c.register(
            "cities",
            Relation::from_values(
                Schema::from_pairs(&[("name", DataType::Str), ("state", DataType::Str)]),
                vec![
                    vec!["SF".into(), "CA".into()],
                    vec!["LA".into(), "CA".into()],
                    vec!["NYC".into(), "NY".into()],
                ],
            ),
        );
        c
    }

    fn run(sql: &str) -> Relation {
        let c = catalog();
        let r = FunctionRegistry::with_builtins();
        let pq = plan_sql(sql, &c, &r).unwrap();
        execute(&pq.plan, &c).unwrap()
    }

    #[test]
    fn plan_simple_projection() {
        let out = run("SELECT session_id, play_time FROM sessions WHERE buffer_time < 20");
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().field(0).name, "session_id");
    }

    #[test]
    fn plan_global_aggregate() {
        let out = run("SELECT AVG(play_time), COUNT(*) FROM sessions");
        assert_eq!(out.len(), 1);
        let avg = out.rows()[0].values[0].as_f64().unwrap();
        assert!((avg - (238.0 + 135.0 + 617.0 + 194.0 + 308.0 + 319.0) / 6.0).abs() < 1e-9);
        assert_eq!(out.rows()[0].values[1], Value::Float(6.0));
    }

    #[test]
    fn plan_group_by_having() {
        let out = run(
            "SELECT city, AVG(play_time) AS ap FROM sessions GROUP BY city \
             HAVING COUNT(*) >= 3 ORDER BY city",
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().field(1).name, "ap");
    }

    #[test]
    fn plan_sbi_uncorrelated_subquery() {
        let out = run("SELECT AVG(play_time) FROM sessions \
             WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)");
        // avg buffer = 35.333; above: t1 (238), t2 (135), t4 (194) → 189.
        assert_eq!(out.len(), 1);
        let v = out.rows()[0].values[0].as_f64().unwrap();
        assert!((v - 189.0).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn plan_correlated_subquery() {
        // Per-city SBI: sessions with buffer above their own city average.
        let out = run("SELECT COUNT(*) FROM sessions s \
             WHERE s.buffer_time > (SELECT AVG(i.buffer_time) FROM sessions i \
                                    WHERE i.city = s.city)");
        // SF avg = (36+58+19)/3 = 37.667 → only t2 (58). LA avg = (17+56+26)/3
        // = 33 → only t4 (56). Count = 2.
        assert_eq!(out.rows()[0].values[0], Value::Float(2.0));
    }

    #[test]
    fn plan_join_with_on() {
        let out = run(
            "SELECT s.session_id, c.state FROM sessions s JOIN cities c ON s.city = c.name \
             WHERE c.state = 'CA' ORDER BY s.session_id",
        );
        assert_eq!(out.len(), 6);
        assert_eq!(out.rows()[0].values[1], Value::str("CA"));
    }

    #[test]
    fn plan_comma_join_equijoin_extraction() {
        let c = catalog();
        let r = FunctionRegistry::with_builtins();
        let pq = plan_sql(
            "SELECT s.session_id FROM sessions s, cities c WHERE s.city = c.name",
            &c,
            &r,
        )
        .unwrap();
        // Must be a hash join, not a cross join + filter.
        let mut saw_hash_join = false;
        pq.plan.visit(&mut |p| {
            if let Plan::Join { left_keys, .. } = p {
                if !left_keys.is_empty() {
                    saw_hash_join = true;
                }
            }
        });
        assert!(saw_hash_join, "{}", pq.plan.explain());
    }

    #[test]
    fn plan_in_subquery_semijoin() {
        let out = run("SELECT session_id FROM sessions WHERE city IN \
             (SELECT name FROM cities WHERE state = 'NY')");
        assert_eq!(out.len(), 0);
        let out = run("SELECT session_id FROM sessions WHERE city IN \
             (SELECT name FROM cities WHERE state = 'CA')");
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn plan_having_with_subquery() {
        // Cities whose average play time exceeds the global average.
        let out = run("SELECT city, AVG(play_time) FROM sessions GROUP BY city \
             HAVING AVG(play_time) > (SELECT AVG(play_time) FROM sessions)");
        // global avg = 301.83; SF avg = 227, LA avg = 376.67 → only LA.
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0].values[0], Value::str("LA"));
    }

    #[test]
    fn plan_expression_over_aggregates() {
        let out = run("SELECT SUM(play_time) / COUNT(*) FROM sessions");
        let v = out.rows()[0].values[0].as_f64().unwrap();
        let expect = (238.0 + 135.0 + 617.0 + 194.0 + 308.0 + 319.0) / 6.0;
        assert!((v - expect).abs() < 1e-9);
    }

    #[test]
    fn plan_case_when_inside_aggregate() {
        let out = run("SELECT SUM(CASE WHEN city = 'SF' THEN 1 ELSE 0 END) FROM sessions");
        assert_eq!(out.rows()[0].values[0], Value::Float(3.0));
    }

    #[test]
    fn plan_udf_in_projection() {
        let out = run("SELECT SQRT(play_time * play_time) AS p FROM sessions WHERE session_id = 1");
        assert_eq!(out.rows()[0].values[0], Value::Float(238.0));
    }

    #[test]
    fn plan_order_by_limit() {
        let out = run("SELECT session_id FROM sessions ORDER BY play_time DESC LIMIT 2");
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0].values[0], Value::Int(3));
    }

    #[test]
    fn plan_union_all() {
        let out = run("SELECT session_id FROM sessions WHERE city = 'SF' \
             UNION ALL SELECT session_id FROM sessions WHERE city = 'LA'");
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn error_on_unknown_table() {
        let c = catalog();
        let r = FunctionRegistry::with_builtins();
        assert!(matches!(
            plan_sql("SELECT x FROM nope", &c, &r),
            Err(PlanError::Catalog(_))
        ));
    }

    #[test]
    fn error_on_unknown_column() {
        let c = catalog();
        let r = FunctionRegistry::with_builtins();
        assert!(matches!(
            plan_sql("SELECT missing_col FROM sessions", &c, &r),
            Err(PlanError::Schema(_))
        ));
    }

    #[test]
    fn error_on_multirow_uncorrelated_scalar_subquery() {
        let c = catalog();
        let r = FunctionRegistry::with_builtins();
        let e = plan_sql(
            "SELECT session_id FROM sessions WHERE buffer_time > (SELECT buffer_time FROM sessions)",
            &c,
            &r,
        );
        assert!(matches!(e, Err(PlanError::Unsupported(_))));
    }

    #[test]
    fn group_by_alias_resolves() {
        let out = run("SELECT city AS c, COUNT(*) FROM sessions GROUP BY c ORDER BY c");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn wildcard_expansion() {
        let out = run("SELECT * FROM sessions WHERE session_id = 1");
        assert_eq!(out.schema().len(), 4);
    }
}
