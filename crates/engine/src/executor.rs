//! Batch executor: evaluates a [`Plan`] bottom-up against a [`Catalog`].
//!
//! This is the reproduction's stand-in for unmodified SparkSQL — the
//! "baseline" of §8. It is also the semantic oracle for Theorem 1: the iOLAP
//! online engine's partial result at batch `i` must equal this executor run
//! on the accumulated prefix `D_i` (with streamed rows weighted `m_i`).
//!
//! All operators are multiplicity-aware per Appendix A:
//! `σ`: `R(t)·θ(t)`; `⋈`: `R1(t1)·R2(t2)`; `γ`: accumulators weight updates
//! by row multiplicity.

use crate::expr::{EvalContext, Expr, ExprError};
use crate::plan::{AggCall, Plan};
use iolap_relation::{Catalog, CatalogError, Relation, Row, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Executor errors.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// Expression evaluation failed.
    Expr(ExprError),
    /// Catalog lookup failed.
    Catalog(CatalogError),
    /// Malformed plan (e.g. scalar subquery returning != 1 row).
    Plan(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Expr(e) => write!(f, "{e}"),
            EngineError::Catalog(e) => write!(f, "{e}"),
            EngineError::Plan(m) => write!(f, "plan error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ExprError> for EngineError {
    fn from(e: ExprError) -> Self {
        EngineError::Expr(e)
    }
}

impl From<CatalogError> for EngineError {
    fn from(e: CatalogError) -> Self {
        EngineError::Catalog(e)
    }
}

/// Execute `plan` against `catalog` with the default (batch) context.
pub fn execute(plan: &Plan, catalog: &Catalog) -> Result<Relation, EngineError> {
    execute_with(plan, catalog, &EvalContext::batch())
}

/// Execute with an explicit evaluation context (the online engines pass a
/// lineage resolver here).
pub fn execute_with(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &EvalContext<'_>,
) -> Result<Relation, EngineError> {
    match plan {
        Plan::Scan { table, schema } => {
            let rel = catalog.get(table)?;
            // Re-qualify with the plan schema (alias-aware).
            Ok(Relation::new(schema.clone(), rel.rows().to_vec()))
        }
        Plan::Select { input, predicate } => {
            let rel = execute_with(input, catalog, ctx)?;
            filter(rel, predicate, ctx)
        }
        Plan::Project {
            input,
            exprs,
            schema,
        } => {
            let rel = execute_with(input, catalog, ctx)?;
            project(rel, exprs, schema, ctx)
        }
        Plan::Join {
            left,
            right,
            left_keys,
            right_keys,
            schema,
        } => {
            let l = execute_with(left, catalog, ctx)?;
            let r = execute_with(right, catalog, ctx)?;
            join(&l, &r, left_keys, right_keys, schema, ctx)
        }
        Plan::SemiJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let l = execute_with(left, catalog, ctx)?;
            let r = execute_with(right, catalog, ctx)?;
            semi_join(l, &r, left_keys, right_keys, ctx)
        }
        Plan::Union { inputs } => {
            let mut out: Option<Relation> = None;
            for p in inputs {
                let rel = execute_with(p, catalog, ctx)?;
                match &mut out {
                    None => out = Some(rel),
                    Some(acc) => acc.rows_mut().extend(rel.into_rows()),
                }
            }
            out.ok_or_else(|| EngineError::Plan("UNION with no inputs".into()))
        }
        Plan::Aggregate {
            input,
            group_cols,
            aggs,
            schema,
            ..
        } => {
            let rel = execute_with(input, catalog, ctx)?;
            aggregate(&rel, group_cols, aggs, schema, ctx)
        }
        Plan::Sort { input, keys, limit } => {
            let rel = execute_with(input, catalog, ctx)?;
            sort(rel, keys, *limit, ctx)
        }
    }
}

/// σ: keep rows whose predicate holds.
pub fn filter(
    rel: Relation,
    predicate: &Expr,
    ctx: &EvalContext<'_>,
) -> Result<Relation, EngineError> {
    let schema = rel.schema().clone();
    let mut rows = Vec::new();
    for row in rel.into_rows() {
        if predicate.eval_predicate(&row, ctx)? {
            rows.push(row);
        }
    }
    Ok(Relation::new(schema, rows))
}

/// π: compute output expressions; multiplicity carries through.
pub fn project(
    rel: Relation,
    exprs: &[Expr],
    schema: &iolap_relation::Schema,
    ctx: &EvalContext<'_>,
) -> Result<Relation, EngineError> {
    let mut rows = Vec::with_capacity(rel.len());
    for row in rel.into_rows() {
        let values = exprs
            .iter()
            .map(|e| eval_keep_ref(e, &row, ctx))
            .collect::<Result<Vec<_>, _>>()?;
        rows.push(Row::with_mult(values, row.mult));
    }
    Ok(Relation::new(schema.clone(), rows))
}

/// Evaluate an expression, but let a bare column reference carry a lineage
/// `Ref` through *unresolved* — projections must preserve refs so lineage
/// keeps propagating (§6.1); any computation on top of a ref still resolves
/// lazily inside `Expr::eval`.
fn eval_keep_ref(e: &Expr, row: &Row, ctx: &EvalContext<'_>) -> Result<Value, ExprError> {
    if let Expr::Col(i) = e {
        if matches!(&row.values[*i], Value::Ref(_) | Value::Pending(_)) {
            return Ok(row.values[*i].clone());
        }
    }
    e.eval(row, ctx)
}

/// ⋈: hash join on key expressions; empty keys = cross join.
pub fn join(
    left: &Relation,
    right: &Relation,
    left_keys: &[Expr],
    right_keys: &[Expr],
    schema: &iolap_relation::Schema,
    ctx: &EvalContext<'_>,
) -> Result<Relation, EngineError> {
    let mut rows = Vec::new();
    if left_keys.is_empty() {
        for l in left.rows() {
            for r in right.rows() {
                rows.push(concat_rows(l, r));
            }
        }
        return Ok(Relation::new(schema.clone(), rows));
    }
    // Build on the right (dimension/aggregate side in our workloads).
    let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
    for r in right.rows() {
        let key = eval_key(right_keys, r, ctx)?;
        table.entry(key).or_default().push(r);
    }
    for l in left.rows() {
        let key = eval_key(left_keys, l, ctx)?;
        if let Some(matches) = table.get(&key) {
            for r in matches {
                rows.push(concat_rows(l, r));
            }
        }
    }
    Ok(Relation::new(schema.clone(), rows))
}

/// Semi-join: keep left rows whose key appears with positive multiplicity on
/// the right; left multiplicities are unchanged (SQL `IN` semantics).
pub fn semi_join(
    left: Relation,
    right: &Relation,
    left_keys: &[Expr],
    right_keys: &[Expr],
    ctx: &EvalContext<'_>,
) -> Result<Relation, EngineError> {
    let mut present: HashMap<Vec<Value>, f64> = HashMap::new();
    for r in right.rows() {
        let key = eval_key(right_keys, r, ctx)?;
        *present.entry(key).or_insert(0.0) += r.mult;
    }
    let schema = left.schema().clone();
    let mut rows = Vec::new();
    for l in left.into_rows() {
        let key = eval_key(left_keys, &l, ctx)?;
        if present.get(&key).copied().unwrap_or(0.0) > 0.0 {
            rows.push(l);
        }
    }
    Ok(Relation::new(schema, rows))
}

/// γ: grouped aggregation with multiplicity-weighted accumulators.
///
/// A global aggregate (no group columns) over an empty input produces the
/// SQL-standard single row of "empty" outputs.
pub fn aggregate(
    rel: &Relation,
    group_cols: &[usize],
    aggs: &[AggCall],
    schema: &iolap_relation::Schema,
    ctx: &EvalContext<'_>,
) -> Result<Relation, EngineError> {
    let mut groups: HashMap<Arc<[Value]>, Vec<Box<dyn crate::aggregate::Accumulator>>> =
        HashMap::new();
    let mut order: Vec<Arc<[Value]>> = Vec::new();
    for row in rel.rows() {
        let key = row.key(group_cols);
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter().map(|a| a.kind.accumulator()).collect()
        });
        for (call, acc) in aggs.iter().zip(accs.iter_mut()) {
            let v = call.input.eval(row, ctx)?;
            acc.update(&v, row.mult);
        }
    }
    if groups.is_empty() && group_cols.is_empty() {
        // Global aggregate over nothing: one row of empty outputs.
        let values: Vec<Value> = aggs
            .iter()
            .map(|a| a.kind.accumulator().output(1.0))
            .collect();
        return Ok(Relation::new(schema.clone(), vec![Row::new(values)]));
    }
    let mut rows = Vec::with_capacity(groups.len());
    for key in order {
        let accs = &groups[&key];
        let mut values: Vec<Value> = key.to_vec();
        for acc in accs {
            values.push(acc.output(1.0));
        }
        rows.push(Row::new(values));
    }
    Ok(Relation::new(schema.clone(), rows))
}

/// ORDER BY + LIMIT.
pub fn sort(
    rel: Relation,
    keys: &[(Expr, bool)],
    limit: Option<u64>,
    ctx: &EvalContext<'_>,
) -> Result<Relation, EngineError> {
    let schema = rel.schema().clone();
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rel.len());
    for row in rel.into_rows() {
        let k = keys
            .iter()
            .map(|(e, _)| e.eval(&row, ctx))
            .collect::<Result<Vec<_>, _>>()?;
        keyed.push((k, row));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for ((x, y), (_, asc)) in ka.iter().zip(kb.iter()).zip(keys.iter()) {
            let mut ord = x.total_cmp(y);
            if !asc {
                ord = ord.reverse();
            }
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut rows: Vec<Row> = keyed.into_iter().map(|(_, r)| r).collect();
    if let Some(n) = limit {
        rows.truncate(n as usize);
    }
    Ok(Relation::new(schema, rows))
}

fn eval_key(keys: &[Expr], row: &Row, ctx: &EvalContext<'_>) -> Result<Vec<Value>, ExprError> {
    keys.iter().map(|e| e.eval(row, ctx)).collect()
}

fn concat_rows(l: &Row, r: &Row) -> Row {
    let mut values = Vec::with_capacity(l.values.len() + r.values.len());
    values.extend(l.values.iter().cloned());
    values.extend(r.values.iter().cloned());
    Row::with_mult(values, l.mult * r.mult)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggKind, BuiltinAgg};
    use crate::expr::CmpOp;
    use iolap_relation::{DataType, Schema};

    fn sessions() -> Relation {
        // The paper's Figure 2(b) Sessions table (batches 1 and 2).
        Relation::from_values(
            Schema::from_pairs(&[
                ("session_id", DataType::Int),
                ("buffer_time", DataType::Float),
                ("play_time", DataType::Float),
            ]),
            vec![
                vec![1.into(), 36.0.into(), 238.0.into()],
                vec![2.into(), 58.0.into(), 135.0.into()],
                vec![3.into(), 17.0.into(), 617.0.into()],
                vec![4.into(), 56.0.into(), 194.0.into()],
                vec![5.into(), 19.0.into(), 308.0.into()],
                vec![6.into(), 26.0.into(), 319.0.into()],
            ],
        )
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register("sessions", sessions());
        c
    }

    fn scan() -> Plan {
        Plan::Scan {
            table: "sessions".into(),
            schema: sessions().schema().clone(),
        }
    }

    /// Hand-built SBI plan (Example 1 / Figure 2(a)).
    fn sbi_plan() -> Plan {
        let inner_agg = Plan::Aggregate {
            input: Box::new(scan()),
            group_cols: vec![],
            aggs: vec![AggCall {
                kind: AggKind::Builtin(BuiltinAgg::Avg),
                input: Expr::Col(1),
                name: "avg_buffer".into(),
            }],
            schema: Schema::from_pairs(&[("avg_buffer", DataType::Float)]),
            agg_id: 0,
        };
        let cross = Plan::Join {
            left: Box::new(scan()),
            right: Box::new(inner_agg),
            left_keys: vec![],
            right_keys: vec![],
            schema: Schema::from_pairs(&[
                ("session_id", DataType::Int),
                ("buffer_time", DataType::Float),
                ("play_time", DataType::Float),
                ("avg_buffer", DataType::Float),
            ]),
        };
        let select = Plan::Select {
            input: Box::new(cross),
            predicate: Expr::Cmp {
                op: CmpOp::Gt,
                left: Box::new(Expr::Col(1)),
                right: Box::new(Expr::Col(3)),
            },
        };
        Plan::Aggregate {
            input: Box::new(select),
            group_cols: vec![],
            aggs: vec![AggCall {
                kind: AggKind::Builtin(BuiltinAgg::Avg),
                input: Expr::Col(2),
                name: "avg_play".into(),
            }],
            schema: Schema::from_pairs(&[("avg_play", DataType::Float)]),
            agg_id: 1,
        }
    }

    #[test]
    fn sbi_end_to_end() {
        // AVG(buffer_time) over all 6 rows = 35.333…; rows above it:
        // t1 (36, 238), t2 (58, 135), t4 (56, 194) → AVG(play_time) = 189.
        let out = execute(&sbi_plan(), &catalog()).unwrap();
        assert_eq!(out.len(), 1);
        let v = out.rows()[0].values[0].as_f64().unwrap();
        assert!((v - 189.0).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn filter_drops_rows() {
        let p = Plan::Select {
            input: Box::new(scan()),
            predicate: Expr::Cmp {
                op: CmpOp::Lt,
                left: Box::new(Expr::Col(1)),
                right: Box::new(Expr::Lit(20.0.into())),
            },
        };
        let out = execute(&p, &catalog()).unwrap();
        assert_eq!(out.len(), 2); // buffer_time 17 and 19
    }

    #[test]
    fn join_multiplies_multiplicities() {
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let mut l = Relation::empty(schema.clone());
        l.push(Row::with_mult(vec![1.into()], 2.0));
        let mut r = Relation::empty(schema.clone());
        r.push(Row::with_mult(vec![1.into()], 3.0));
        let out = join(
            &l,
            &r,
            &[Expr::Col(0)],
            &[Expr::Col(0)],
            &schema.join(&schema),
            &EvalContext::batch(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!((out.rows()[0].mult - 6.0).abs() < 1e-12);
    }

    #[test]
    fn semi_join_keeps_left_mult() {
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let mut l = Relation::empty(schema.clone());
        l.push(Row::with_mult(vec![1.into()], 2.0));
        l.push(Row::with_mult(vec![2.into()], 1.0));
        let r = Relation::from_values(schema.clone(), vec![vec![1.into()], vec![1.into()]]);
        let out = semi_join(
            l,
            &r,
            &[Expr::Col(0)],
            &[Expr::Col(0)],
            &EvalContext::batch(),
        )
        .unwrap();
        // Only k=1 survives, with its own multiplicity (not doubled).
        assert_eq!(out.len(), 1);
        assert!((out.rows()[0].mult - 2.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_groups_weighted() {
        let schema = Schema::from_pairs(&[("g", DataType::Int), ("v", DataType::Float)]);
        let mut rel = Relation::empty(schema);
        rel.push(Row::with_mult(vec![1.into(), 10.0.into()], 2.0));
        rel.push(Row::with_mult(vec![1.into(), 20.0.into()], 1.0));
        rel.push(Row::with_mult(vec![2.into(), 5.0.into()], 1.0));
        let out_schema = Schema::from_pairs(&[("g", DataType::Int), ("s", DataType::Float)]);
        let out = aggregate(
            &rel,
            &[0],
            &[AggCall {
                kind: AggKind::Builtin(BuiltinAgg::Sum),
                input: Expr::Col(1),
                name: "s".into(),
            }],
            &out_schema,
            &EvalContext::batch(),
        )
        .unwrap();
        let n = out.normalize();
        assert_eq!(n.len(), 2);
        assert_eq!(n.rows()[0].values[1], Value::Float(40.0)); // 10*2 + 20
        assert_eq!(n.rows()[1].values[1], Value::Float(5.0));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let schema = Schema::from_pairs(&[("v", DataType::Float)]);
        let rel = Relation::empty(schema);
        let out_schema = Schema::from_pairs(&[("c", DataType::Float), ("s", DataType::Float)]);
        let out = aggregate(
            &rel,
            &[],
            &[
                AggCall {
                    kind: AggKind::Builtin(BuiltinAgg::Count),
                    input: Expr::Col(0),
                    name: "c".into(),
                },
                AggCall {
                    kind: AggKind::Builtin(BuiltinAgg::Sum),
                    input: Expr::Col(0),
                    name: "s".into(),
                },
            ],
            &out_schema,
            &EvalContext::batch(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0].values[0], Value::Float(0.0));
        assert_eq!(out.rows()[0].values[1], Value::Null);
    }

    #[test]
    fn grouped_aggregate_on_empty_input_is_empty() {
        let schema = Schema::from_pairs(&[("g", DataType::Int), ("v", DataType::Float)]);
        let rel = Relation::empty(schema);
        let out_schema = Schema::from_pairs(&[("g", DataType::Int), ("c", DataType::Float)]);
        let out = aggregate(
            &rel,
            &[0],
            &[AggCall {
                kind: AggKind::Builtin(BuiltinAgg::Count),
                input: Expr::Col(1),
                name: "c".into(),
            }],
            &out_schema,
            &EvalContext::batch(),
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn sort_and_limit() {
        let p = Plan::Sort {
            input: Box::new(scan()),
            keys: vec![(Expr::Col(1), false)],
            limit: Some(2),
        };
        let out = execute(&p, &catalog()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0].values[1], Value::Float(58.0));
        assert_eq!(out.rows()[1].values[1], Value::Float(56.0));
    }

    #[test]
    fn union_all_concatenates() {
        let p = Plan::Union {
            inputs: vec![scan(), scan()],
        };
        let out = execute(&p, &catalog()).unwrap();
        assert_eq!(out.len(), 12);
    }

    #[test]
    fn scaling_by_multiplicity_equals_weighted_query() {
        // Q(D_i, m_i): weighting every row by m Leaves AVG unchanged and
        // scales SUM by m — the §2 semantics.
        let base = sessions();
        let mut weighted = Relation::empty(base.schema().clone());
        for r in base.rows() {
            weighted.push(Row::with_mult(r.values.to_vec(), 3.0));
        }
        let mut c = Catalog::new();
        c.register("sessions", weighted);
        let agg = Plan::Aggregate {
            input: Box::new(scan()),
            group_cols: vec![],
            aggs: vec![
                AggCall {
                    kind: AggKind::Builtin(BuiltinAgg::Sum),
                    input: Expr::Col(2),
                    name: "s".into(),
                },
                AggCall {
                    kind: AggKind::Builtin(BuiltinAgg::Avg),
                    input: Expr::Col(2),
                    name: "a".into(),
                },
            ],
            schema: Schema::from_pairs(&[("s", DataType::Float), ("a", DataType::Float)]),
            agg_id: 0,
        };
        let out = execute(&agg, &c).unwrap();
        let s = out.rows()[0].values[0].as_f64().unwrap();
        let a = out.rows()[0].values[1].as_f64().unwrap();
        let plain_sum: f64 = sessions()
            .rows()
            .iter()
            .map(|r| r.values[2].as_f64().unwrap())
            .sum();
        assert!((s - 3.0 * plain_sum).abs() < 1e-9);
        assert!((a - plain_sum / 6.0).abs() < 1e-9);
    }
}
