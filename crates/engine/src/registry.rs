//! Function registry: scalar UDFs and UDAFs.
//!
//! iOLAP "significantly generalizes incremental query processing to complex
//! queries with … user-defined functions (UDFs) and user-defined aggregate
//! functions (UDAFs)" (§1). The registry is consulted by the planner to
//! classify SQL function calls; built-in aggregates (SUM/AVG/…) take
//! precedence, then registered UDAFs, then scalar UDFs (built-in math and
//! string functions are pre-registered).

use crate::aggregate::Udaf;
use crate::expr::{ExprError, ScalarUdf};
use iolap_relation::{DataType, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Registry of user-defined functions.
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    scalars: HashMap<String, Arc<dyn ScalarUdf>>,
    udafs: HashMap<String, Arc<dyn Udaf>>,
}

impl FunctionRegistry {
    /// Empty registry (no built-ins).
    pub fn empty() -> Self {
        FunctionRegistry::default()
    }

    /// Registry pre-loaded with built-in scalar functions: `ABS`, `SQRT`,
    /// `LN`, `EXP`, `FLOOR`, `CEIL`, `ROUND`, `LENGTH`, `SUBSTR`, `UPPER`,
    /// `LOWER`, `IF`.
    pub fn with_builtins() -> Self {
        let mut r = FunctionRegistry::default();
        for f in builtin_scalars() {
            r.register_scalar(f);
        }
        r
    }

    /// Register a scalar UDF (replaces an existing function of the same
    /// name).
    pub fn register_scalar(&mut self, f: Arc<dyn ScalarUdf>) {
        self.scalars.insert(f.name().to_ascii_uppercase(), f);
    }

    /// Register a UDAF.
    pub fn register_udaf(&mut self, f: Arc<dyn Udaf>) {
        self.udafs.insert(f.name().to_ascii_uppercase(), f);
    }

    /// Look up a scalar function.
    pub fn scalar(&self, name: &str) -> Option<Arc<dyn ScalarUdf>> {
        self.scalars.get(&name.to_ascii_uppercase()).cloned()
    }

    /// Look up a UDAF.
    pub fn udaf(&self, name: &str) -> Option<Arc<dyn Udaf>> {
        self.udafs.get(&name.to_ascii_uppercase()).cloned()
    }
}

/// Helper to define scalar UDFs from plain functions.
pub struct FnUdf {
    name: &'static str,
    ret: DataType,
    f: fn(&[Value]) -> Result<Value, ExprError>,
}

impl FnUdf {
    /// Define a scalar UDF from a plain function pointer.
    pub fn new(
        name: &'static str,
        ret: DataType,
        f: fn(&[Value]) -> Result<Value, ExprError>,
    ) -> Self {
        FnUdf { name, ret, f }
    }
}

impl ScalarUdf for FnUdf {
    fn name(&self) -> &str {
        self.name
    }
    fn invoke(&self, args: &[Value]) -> Result<Value, ExprError> {
        (self.f)(args)
    }
    fn return_type(&self, _args: &[DataType]) -> DataType {
        self.ret
    }
}

fn num_arg(args: &[Value], i: usize, fname: &str) -> Result<Option<f64>, ExprError> {
    match args.get(i) {
        None => Err(ExprError::Udf(format!("{fname}: missing argument {i}"))),
        Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| ExprError::Udf(format!("{fname}: argument {i} not numeric"))),
    }
}

macro_rules! math1 {
    ($name:literal, $f:expr) => {
        Arc::new(FnUdf {
            name: $name,
            ret: DataType::Float,
            f: |args| match num_arg(args, 0, $name)? {
                None => Ok(Value::Null),
                Some(x) =>
                {
                    #[allow(clippy::redundant_closure_call)]
                    Ok(Value::Float(($f)(x)))
                }
            },
        }) as Arc<dyn ScalarUdf>
    };
}

fn builtin_scalars() -> Vec<Arc<dyn ScalarUdf>> {
    vec![
        math1!("ABS", |x: f64| x.abs()),
        math1!("SQRT", |x: f64| x.sqrt()),
        math1!("LN", |x: f64| x.ln()),
        math1!("EXP", |x: f64| x.exp()),
        math1!("FLOOR", |x: f64| x.floor()),
        math1!("CEIL", |x: f64| x.ceil()),
        math1!("ROUND", |x: f64| x.round()),
        Arc::new(FnUdf {
            name: "LENGTH",
            ret: DataType::Int,
            f: |args| match args.first() {
                Some(Value::Str(s)) => Ok(Value::Int(s.len() as i64)),
                Some(Value::Null) => Ok(Value::Null),
                _ => Err(ExprError::Udf("LENGTH: expected string".into())),
            },
        }),
        Arc::new(FnUdf {
            name: "SUBSTR",
            ret: DataType::Str,
            f: |args| {
                let s = match args.first() {
                    Some(Value::Str(s)) => s.clone(),
                    Some(Value::Null) => return Ok(Value::Null),
                    _ => return Err(ExprError::Udf("SUBSTR: expected string".into())),
                };
                // SQL 1-based start, optional length.
                let start = match args.get(1).and_then(|v| v.as_i64()) {
                    Some(n) if n >= 1 => (n - 1) as usize,
                    _ => return Err(ExprError::Udf("SUBSTR: bad start".into())),
                };
                let len = args
                    .get(2)
                    .and_then(|v| v.as_i64())
                    .map(|n| n.max(0) as usize);
                let tail: String = s.chars().skip(start).collect();
                let out = match len {
                    Some(l) => tail.chars().take(l).collect::<String>(),
                    None => tail,
                };
                Ok(Value::str(out))
            },
        }),
        Arc::new(FnUdf {
            name: "UPPER",
            ret: DataType::Str,
            f: |args| match args.first() {
                Some(Value::Str(s)) => Ok(Value::str(s.to_ascii_uppercase())),
                Some(Value::Null) => Ok(Value::Null),
                _ => Err(ExprError::Udf("UPPER: expected string".into())),
            },
        }),
        Arc::new(FnUdf {
            name: "LOWER",
            ret: DataType::Str,
            f: |args| match args.first() {
                Some(Value::Str(s)) => Ok(Value::str(s.to_ascii_lowercase())),
                Some(Value::Null) => Ok(Value::Null),
                _ => Err(ExprError::Udf("LOWER: expected string".into())),
            },
        }),
        Arc::new(FnUdf {
            name: "IF",
            ret: DataType::Float,
            f: |args| {
                if args.len() != 3 {
                    return Err(ExprError::Udf("IF: expects 3 arguments".into()));
                }
                if matches!(args[0], Value::Bool(true)) {
                    Ok(args[1].clone())
                } else {
                    Ok(args[2].clone())
                }
            },
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_present() {
        let r = FunctionRegistry::with_builtins();
        assert!(r.scalar("abs").is_some());
        assert!(r.scalar("SQRT").is_some());
        assert!(r.scalar("missing").is_none());
    }

    #[test]
    fn sqrt_invokes() {
        let r = FunctionRegistry::with_builtins();
        let f = r.scalar("SQRT").unwrap();
        assert_eq!(f.invoke(&[Value::Float(9.0)]).unwrap(), Value::Float(3.0));
        assert_eq!(f.invoke(&[Value::Null]).unwrap(), Value::Null);
    }

    #[test]
    fn substr_sql_semantics() {
        let r = FunctionRegistry::with_builtins();
        let f = r.scalar("SUBSTR").unwrap();
        assert_eq!(
            f.invoke(&[Value::str("FRANCE"), Value::Int(1), Value::Int(2)])
                .unwrap(),
            Value::str("FR")
        );
        assert_eq!(
            f.invoke(&[Value::str("abc"), Value::Int(2)]).unwrap(),
            Value::str("bc")
        );
    }

    #[test]
    fn length_and_case() {
        let r = FunctionRegistry::with_builtins();
        assert_eq!(
            r.scalar("LENGTH")
                .unwrap()
                .invoke(&[Value::str("abcd")])
                .unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            r.scalar("UPPER")
                .unwrap()
                .invoke(&[Value::str("ab")])
                .unwrap(),
            Value::str("AB")
        );
    }
}
