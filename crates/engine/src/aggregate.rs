//! Aggregate functions and multiplicity-weighted accumulators.
//!
//! Accumulators are weighted: every update carries the row's multiplicity
//! (Appendix A bag semantics). This single mechanism supports
//!
//! * plain batch aggregation (weight 1),
//! * partial-result scaling `Q(D_i, m_i)` (§2) — extensive aggregates
//!   multiply their output by `m_i` at *publish* time, so running sketches
//!   stay unscaled and are reusable across batches, and
//! * Poissonized bootstrap trials (§2 "Error Estimation"): trial `j` updates
//!   with weight `mult × Poisson(1)` draws.
//!
//! Aggregates also declare whether they are *smooth* (Hadamard
//! differentiable, §3.3): MIN/MAX are not, so the iOLAP rewriter refuses to
//! build variation ranges on top of them.

use crate::expr::ExprError;
use crate::EngineError;
use iolap_relation::{DataType, Value};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// A factory for one aggregate function.
pub trait AggregateFunction: Send + Sync {
    /// SQL name (uppercase).
    fn name(&self) -> &str;
    /// Fresh accumulator.
    fn accumulator(&self) -> Box<dyn Accumulator>;
    /// Result type given the input type.
    fn return_type(&self, input: DataType) -> DataType;
    /// Whether the aggregate is smooth under sampling (Hadamard
    /// differentiable) — a precondition for bootstrap-based variation
    /// ranges (§3.3).
    fn smooth(&self) -> bool {
        true
    }
    /// Whether the aggregate is *extensive*: proportional to dataset size,
    /// so partial results must be scaled by `m_i = |D|/|D_i|` (§2).
    /// SUM/COUNT are extensive; AVG/MIN/MAX are intensive.
    fn extensive(&self) -> bool;
}

/// A running aggregate state. `Sync` so shared operator state can be read
/// from parallel fold workers.
pub trait Accumulator: Send + Sync {
    /// Fold in one value with the given weight (row multiplicity ×
    /// bootstrap multiplier).
    fn update(&mut self, v: &Value, weight: f64);
    /// Merge another accumulator of the same function (partition merge).
    /// Errs if `other` is an accumulator of a different concrete kind —
    /// a planner bug surfaced as a graceful `EngineError` rather than a
    /// hot-path panic.
    fn merge(&mut self, other: &dyn Accumulator) -> Result<(), EngineError>;
    /// Current output. `scale` is the extensive-aggregate multiplier `m_i`;
    /// intensive aggregates ignore it.
    fn output(&self, scale: f64) -> Value;
    /// Numeric view of the output for bootstrap statistics; `None` for
    /// non-numeric aggregates.
    fn output_f64(&self, scale: f64) -> Option<f64> {
        self.output(scale).as_f64()
    }
    /// Clone into a boxed accumulator.
    fn boxed_clone(&self) -> Box<dyn Accumulator>;
    /// Dynamic self for merge downcasting.
    fn as_any(&self) -> &dyn std::any::Any;
    /// Rough state footprint in bytes (for the paper's state-size
    /// accounting; sketchable aggregates report O(1)).
    fn approx_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

/// Downcast `other` for a partition merge, or report the planner bug as a
/// graceful plan error naming the expected aggregate kind.
fn downcast_merge<'a, T: 'static>(
    other: &'a dyn Accumulator,
    kind: &str,
) -> Result<&'a T, EngineError> {
    other.as_any().downcast_ref::<T>().ok_or_else(|| {
        EngineError::Plan(format!(
            "accumulator kind mismatch while merging {kind} partitions"
        ))
    })
}

macro_rules! impl_acc_boilerplate {
    ($t:ty) => {
        fn boxed_clone(&self) -> Box<dyn Accumulator> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    };
}

/// `COUNT(expr)` / `COUNT(*)`: Σ weight over non-null inputs.
#[derive(Clone, Debug, Default)]
pub struct CountAcc {
    n: f64,
}

impl CountAcc {
    /// Lossless state snapshot for shard partial shipping.
    pub fn state(&self) -> f64 {
        self.n
    }
    /// Rebuild from a [`CountAcc::state`] snapshot (bit-exact).
    pub fn from_state(n: f64) -> Self {
        CountAcc { n }
    }
}

impl Accumulator for CountAcc {
    fn update(&mut self, v: &Value, weight: f64) {
        if !v.is_null() {
            self.n += weight;
        }
    }
    fn merge(&mut self, other: &dyn Accumulator) -> Result<(), EngineError> {
        let o = downcast_merge::<CountAcc>(other, "COUNT")?;
        self.n += o.n;
        Ok(())
    }
    fn output(&self, scale: f64) -> Value {
        Value::Float(self.n * scale)
    }
    impl_acc_boilerplate!(CountAcc);
}

/// `SUM(expr)`.
#[derive(Clone, Debug, Default)]
pub struct SumAcc {
    sum: f64,
    any: bool,
}

impl SumAcc {
    /// Lossless state snapshot (`(sum, saw_any_numeric)`) for shard
    /// partial shipping.
    pub fn state(&self) -> (f64, bool) {
        (self.sum, self.any)
    }
    /// Rebuild from a [`SumAcc::state`] snapshot (bit-exact).
    pub fn from_state(sum: f64, any: bool) -> Self {
        SumAcc { sum, any }
    }
}

impl Accumulator for SumAcc {
    fn update(&mut self, v: &Value, weight: f64) {
        if let Some(x) = v.as_f64() {
            self.sum += x * weight;
            self.any = true;
        }
    }
    fn merge(&mut self, other: &dyn Accumulator) -> Result<(), EngineError> {
        let o = downcast_merge::<SumAcc>(other, "SUM")?;
        self.sum += o.sum;
        self.any |= o.any;
        Ok(())
    }
    fn output(&self, scale: f64) -> Value {
        if self.any {
            Value::Float(self.sum * scale)
        } else {
            Value::Null
        }
    }
    impl_acc_boilerplate!(SumAcc);
}

/// `AVG(expr)` — the running sum + running count sketch of §4.2.
#[derive(Clone, Debug, Default)]
pub struct AvgAcc {
    sum: f64,
    n: f64,
}

impl AvgAcc {
    /// Lossless state snapshot (`(sum, n)`) for shard partial shipping.
    pub fn state(&self) -> (f64, f64) {
        (self.sum, self.n)
    }
    /// Rebuild from an [`AvgAcc::state`] snapshot (bit-exact).
    pub fn from_state(sum: f64, n: f64) -> Self {
        AvgAcc { sum, n }
    }
}

impl Accumulator for AvgAcc {
    fn update(&mut self, v: &Value, weight: f64) {
        if let Some(x) = v.as_f64() {
            self.sum += x * weight;
            self.n += weight;
        }
    }
    fn merge(&mut self, other: &dyn Accumulator) -> Result<(), EngineError> {
        let o = downcast_merge::<AvgAcc>(other, "AVG")?;
        self.sum += o.sum;
        self.n += o.n;
        Ok(())
    }
    fn output(&self, _scale: f64) -> Value {
        if self.n == 0.0 {
            Value::Null
        } else {
            Value::Float(self.sum / self.n)
        }
    }
    impl_acc_boilerplate!(AvgAcc);
}

/// `MIN(expr)` / `MAX(expr)` (not smooth; excluded from uncertainty ranges).
#[derive(Clone, Debug)]
pub struct ExtremeAcc {
    best: Option<Value>,
    is_min: bool,
}

impl ExtremeAcc {
    fn new(is_min: bool) -> Self {
        ExtremeAcc { best: None, is_min }
    }
}

impl Accumulator for ExtremeAcc {
    fn update(&mut self, v: &Value, weight: f64) {
        if v.is_null() || weight <= 0.0 {
            return;
        }
        let better = match &self.best {
            None => true,
            Some(b) => {
                let ord = v.total_cmp(b);
                if self.is_min {
                    ord == std::cmp::Ordering::Less
                } else {
                    ord == std::cmp::Ordering::Greater
                }
            }
        };
        if better {
            self.best = Some(v.clone());
        }
    }
    fn merge(&mut self, other: &dyn Accumulator) -> Result<(), EngineError> {
        let o = downcast_merge::<ExtremeAcc>(other, "MIN/MAX")?;
        if let Some(b) = &o.best {
            self.update(b, 1.0);
        }
        Ok(())
    }
    fn output(&self, _scale: f64) -> Value {
        self.best.clone().unwrap_or(Value::Null)
    }
    impl_acc_boilerplate!(ExtremeAcc);
}

/// `VAR(expr)` / `STDDEV(expr)` — weighted population moments; smooth.
#[derive(Clone, Debug, Default)]
pub struct VarianceAcc {
    n: f64,
    sum: f64,
    sumsq: f64,
    stddev: bool,
}

impl Accumulator for VarianceAcc {
    fn update(&mut self, v: &Value, weight: f64) {
        if let Some(x) = v.as_f64() {
            self.n += weight;
            self.sum += x * weight;
            self.sumsq += x * x * weight;
        }
    }
    fn merge(&mut self, other: &dyn Accumulator) -> Result<(), EngineError> {
        let o = downcast_merge::<VarianceAcc>(other, "VAR/STDDEV")?;
        self.n += o.n;
        self.sum += o.sum;
        self.sumsq += o.sumsq;
        Ok(())
    }
    fn output(&self, _scale: f64) -> Value {
        if self.n <= 0.0 {
            return Value::Null;
        }
        let mean = self.sum / self.n;
        let var = (self.sumsq / self.n - mean * mean).max(0.0);
        Value::Float(if self.stddev { var.sqrt() } else { var })
    }
    impl_acc_boilerplate!(VarianceAcc);
}

/// `COUNT(DISTINCT expr)` — exact distinct set; weight is irrelevant beyond
/// presence. Not sketchable, so its state is O(distinct values).
#[derive(Clone, Debug, Default)]
pub struct CountDistinctAcc {
    seen: HashSet<Value>,
}

impl Accumulator for CountDistinctAcc {
    fn update(&mut self, v: &Value, weight: f64) {
        if !v.is_null() && weight > 0.0 {
            self.seen.insert(v.clone());
        }
    }
    fn merge(&mut self, other: &dyn Accumulator) -> Result<(), EngineError> {
        let o = downcast_merge::<CountDistinctAcc>(other, "COUNT DISTINCT")?;
        self.seen.extend(o.seen.iter().cloned());
        Ok(())
    }
    fn output(&self, scale: f64) -> Value {
        Value::Float(self.seen.len() as f64 * scale)
    }
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.seen.len() * std::mem::size_of::<Value>()
    }
    impl_acc_boilerplate!(CountDistinctAcc);
}

/// Built-in aggregate function descriptors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BuiltinAgg {
    Count,
    CountDistinct,
    Sum,
    Avg,
    Min,
    Max,
    Var,
    StdDev,
}

impl AggregateFunction for BuiltinAgg {
    fn name(&self) -> &str {
        match self {
            BuiltinAgg::Count => "COUNT",
            BuiltinAgg::CountDistinct => "COUNT_DISTINCT",
            BuiltinAgg::Sum => "SUM",
            BuiltinAgg::Avg => "AVG",
            BuiltinAgg::Min => "MIN",
            BuiltinAgg::Max => "MAX",
            BuiltinAgg::Var => "VAR",
            BuiltinAgg::StdDev => "STDDEV",
        }
    }

    fn accumulator(&self) -> Box<dyn Accumulator> {
        match self {
            BuiltinAgg::Count => Box::new(CountAcc::default()),
            BuiltinAgg::CountDistinct => Box::new(CountDistinctAcc::default()),
            BuiltinAgg::Sum => Box::new(SumAcc::default()),
            BuiltinAgg::Avg => Box::new(AvgAcc::default()),
            BuiltinAgg::Min => Box::new(ExtremeAcc::new(true)),
            BuiltinAgg::Max => Box::new(ExtremeAcc::new(false)),
            BuiltinAgg::Var => Box::new(VarianceAcc {
                stddev: false,
                ..Default::default()
            }),
            BuiltinAgg::StdDev => Box::new(VarianceAcc {
                stddev: true,
                ..Default::default()
            }),
        }
    }

    fn return_type(&self, input: DataType) -> DataType {
        match self {
            BuiltinAgg::Min | BuiltinAgg::Max => input,
            _ => DataType::Float,
        }
    }

    fn smooth(&self) -> bool {
        // MIN/MAX are not Hadamard differentiable (§3.3); COUNT DISTINCT is
        // likewise not smooth under resampling.
        !matches!(
            self,
            BuiltinAgg::Min | BuiltinAgg::Max | BuiltinAgg::CountDistinct
        )
    }

    fn extensive(&self) -> bool {
        matches!(
            self,
            BuiltinAgg::Count | BuiltinAgg::Sum | BuiltinAgg::CountDistinct
        )
    }
}

/// A user-defined aggregate: implement this trait and register it. The
/// paper's C8–C10 queries exercise UDAFs; see `iolap-workloads` for concrete
/// examples (harmonic mean, weighted rebuffer ratio, geometric mean).
pub trait Udaf: Send + Sync {
    /// SQL name (uppercase).
    fn name(&self) -> &str;
    /// Fresh state.
    fn accumulator(&self) -> Box<dyn Accumulator>;
    /// Declared smoothness (§3.3 precondition for bootstrap estimation).
    fn smooth(&self) -> bool {
        true
    }
    /// Whether scaled by `m_i` (see [`AggregateFunction::extensive`]).
    fn extensive(&self) -> bool {
        false
    }
}

/// An aggregate function handle: built-in or user-defined.
#[derive(Clone)]
pub enum AggKind {
    /// Built-in.
    Builtin(BuiltinAgg),
    /// Registered UDAF.
    Udaf(Arc<dyn Udaf>),
}

impl AggKind {
    /// Function name.
    pub fn name(&self) -> &str {
        match self {
            AggKind::Builtin(b) => b.name(),
            AggKind::Udaf(u) => u.name(),
        }
    }

    /// Fresh accumulator.
    pub fn accumulator(&self) -> Box<dyn Accumulator> {
        match self {
            AggKind::Builtin(b) => b.accumulator(),
            AggKind::Udaf(u) => u.accumulator(),
        }
    }

    /// Smoothness flag.
    pub fn smooth(&self) -> bool {
        match self {
            AggKind::Builtin(b) => b.smooth(),
            AggKind::Udaf(u) => u.smooth(),
        }
    }

    /// Extensive flag (scaled by `m_i`).
    pub fn extensive(&self) -> bool {
        match self {
            AggKind::Builtin(b) => AggregateFunction::extensive(b),
            AggKind::Udaf(u) => u.extensive(),
        }
    }

    /// Result type.
    pub fn return_type(&self, input: DataType) -> DataType {
        match self {
            AggKind::Builtin(b) => b.return_type(input),
            AggKind::Udaf(_) => DataType::Float,
        }
    }
}

impl fmt::Debug for AggKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Resolve a SQL function name to a built-in aggregate.
pub fn builtin_agg(name: &str, distinct: bool) -> Option<BuiltinAgg> {
    Some(match (name, distinct) {
        ("COUNT", false) => BuiltinAgg::Count,
        ("COUNT", true) => BuiltinAgg::CountDistinct,
        ("SUM", false) => BuiltinAgg::Sum,
        ("AVG", false) => BuiltinAgg::Avg,
        ("MIN", _) => BuiltinAgg::Min,
        ("MAX", _) => BuiltinAgg::Max,
        ("VAR", false) | ("VARIANCE", false) => BuiltinAgg::Var,
        ("STDDEV", false) | ("STD", false) => BuiltinAgg::StdDev,
        _ => return None,
    })
}

/// Errors surfaced by aggregation.
#[derive(Clone, Debug, PartialEq)]
pub enum AggError {
    /// Wrapped expression error.
    Expr(ExprError),
    /// DISTINCT on an unsupported aggregate.
    BadDistinct(String),
}

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggError::Expr(e) => write!(f, "{e}"),
            AggError::BadDistinct(n) => write!(f, "DISTINCT not supported for {n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(acc: &mut dyn Accumulator, vals: &[(f64, f64)]) {
        for (v, w) in vals {
            acc.update(&Value::Float(*v), *w);
        }
    }

    #[test]
    fn count_weighted() {
        let mut a = CountAcc::default();
        feed(&mut a, &[(1.0, 1.0), (2.0, 2.5)]);
        a.update(&Value::Null, 1.0); // nulls not counted
        assert_eq!(a.output(1.0), Value::Float(3.5));
        assert_eq!(a.output(2.0), Value::Float(7.0)); // extensive scaling
    }

    #[test]
    fn sum_weighted_and_scaled() {
        let mut a = SumAcc::default();
        feed(&mut a, &[(10.0, 1.0), (5.0, 2.0)]);
        assert_eq!(a.output(1.0), Value::Float(20.0));
        assert_eq!(a.output(4.0), Value::Float(80.0));
    }

    #[test]
    fn sum_of_nothing_is_null() {
        let a = SumAcc::default();
        assert_eq!(a.output(1.0), Value::Null);
    }

    #[test]
    fn avg_ignores_scale() {
        let mut a = AvgAcc::default();
        feed(&mut a, &[(10.0, 1.0), (20.0, 1.0)]);
        assert_eq!(a.output(1.0), Value::Float(15.0));
        assert_eq!(a.output(100.0), Value::Float(15.0));
    }

    #[test]
    fn avg_respects_weights() {
        let mut a = AvgAcc::default();
        feed(&mut a, &[(10.0, 3.0), (20.0, 1.0)]);
        assert_eq!(a.output(1.0), Value::Float(12.5));
    }

    #[test]
    fn min_max() {
        let mut mn = ExtremeAcc::new(true);
        let mut mx = ExtremeAcc::new(false);
        for v in [3.0, -1.0, 7.0] {
            mn.update(&Value::Float(v), 1.0);
            mx.update(&Value::Float(v), 1.0);
        }
        assert_eq!(mn.output(1.0), Value::Float(-1.0));
        assert_eq!(mx.output(1.0), Value::Float(7.0));
    }

    #[test]
    fn zero_weight_skips_extremes() {
        let mut mn = ExtremeAcc::new(true);
        mn.update(&Value::Float(-100.0), 0.0);
        mn.update(&Value::Float(5.0), 1.0);
        assert_eq!(mn.output(1.0), Value::Float(5.0));
    }

    #[test]
    fn variance_and_stddev() {
        let mut v = VarianceAcc::default();
        feed(
            &mut v,
            &[
                (2.0, 1.0),
                (4.0, 1.0),
                (4.0, 1.0),
                (4.0, 1.0),
                (5.0, 1.0),
                (5.0, 1.0),
                (7.0, 1.0),
                (9.0, 1.0),
            ],
        );
        assert_eq!(v.output(1.0), Value::Float(4.0));
        let mut s = VarianceAcc {
            stddev: true,
            ..Default::default()
        };
        feed(
            &mut s,
            &[
                (2.0, 1.0),
                (4.0, 1.0),
                (4.0, 1.0),
                (4.0, 1.0),
                (5.0, 1.0),
                (5.0, 1.0),
                (7.0, 1.0),
                (9.0, 1.0),
            ],
        );
        assert_eq!(s.output(1.0), Value::Float(2.0));
    }

    #[test]
    fn count_distinct() {
        let mut a = CountDistinctAcc::default();
        for v in [1, 2, 2, 3] {
            a.update(&Value::Int(v), 1.0);
        }
        assert_eq!(a.output(1.0), Value::Float(3.0));
    }

    #[test]
    fn merge_partitions() {
        let mut a = AvgAcc::default();
        feed(&mut a, &[(10.0, 1.0)]);
        let mut b = AvgAcc::default();
        feed(&mut b, &[(30.0, 1.0)]);
        a.merge(&b).unwrap();
        assert_eq!(a.output(1.0), Value::Float(20.0));
    }

    #[test]
    fn smoothness_flags() {
        assert!(BuiltinAgg::Avg.smooth());
        assert!(BuiltinAgg::Sum.smooth());
        assert!(!BuiltinAgg::Min.smooth());
        assert!(!BuiltinAgg::Max.smooth());
        assert!(!BuiltinAgg::CountDistinct.smooth());
    }

    #[test]
    fn extensive_flags() {
        assert!(AggregateFunction::extensive(&BuiltinAgg::Sum));
        assert!(AggregateFunction::extensive(&BuiltinAgg::Count));
        assert!(!AggregateFunction::extensive(&BuiltinAgg::Avg));
        assert!(!AggregateFunction::extensive(&BuiltinAgg::Max));
    }

    #[test]
    fn builtin_lookup() {
        assert_eq!(builtin_agg("COUNT", true), Some(BuiltinAgg::CountDistinct));
        assert_eq!(builtin_agg("AVG", false), Some(BuiltinAgg::Avg));
        assert_eq!(builtin_agg("AVG", true), None);
        assert_eq!(builtin_agg("NOPE", false), None);
    }
}
