//! Logical query plans.
//!
//! Plans are built by the planner from SQL ASTs and consumed by three
//! executors: the batch executor in this crate (the "traditional OLAP
//! engine" baseline of §8), the iOLAP online executor (`iolap-core`), and
//! the HDA comparator (`iolap-baselines`). All three agree on the operator
//! semantics defined in Appendix A.
//!
//! Aggregate nodes carry a stable `agg_id`, which doubles as the paper's
//! `rel(γ)` — the unique reference used by block-wise lineage (§6.1).

use crate::aggregate::AggKind;
use crate::expr::Expr;
use iolap_relation::Schema;
use std::fmt;

/// One aggregate call inside an [`Plan::Aggregate`] node.
#[derive(Clone, Debug)]
pub struct AggCall {
    /// The aggregate function.
    pub kind: AggKind,
    /// Argument expression over the aggregate input schema (`Lit(1)` for
    /// `COUNT(*)`).
    pub input: Expr,
    /// Output column name.
    pub name: String,
}

/// A logical plan node.
#[derive(Clone, Debug)]
pub enum Plan {
    /// Base table scan.
    Scan {
        /// Table name in the catalog.
        table: String,
        /// Output schema (qualified by the table's effective name).
        schema: Schema,
    },
    /// Filter (`σ_θ`).
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate.
        predicate: Expr,
    },
    /// Projection (`π`), SQL-style without duplicate elimination.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output expressions.
        exprs: Vec<Expr>,
        /// Output schema.
        schema: Schema,
    },
    /// Equi- or cross-join (`⋈`). Empty key lists mean cross join.
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join key expressions over the left schema.
        left_keys: Vec<Expr>,
        /// Join key expressions over the right schema.
        right_keys: Vec<Expr>,
        /// Output schema (left ++ right).
        schema: Schema,
    },
    /// Semi-join for `IN (SELECT …)`: keeps left rows whose key appears in
    /// the right input. Output schema = left schema.
    SemiJoin {
        /// Probe input.
        left: Box<Plan>,
        /// Match-set input.
        right: Box<Plan>,
        /// Probe key expressions over the left schema.
        left_keys: Vec<Expr>,
        /// Match key expressions over the right schema.
        right_keys: Vec<Expr>,
    },
    /// `UNION ALL`.
    Union {
        /// Inputs with congruent schemas.
        inputs: Vec<Plan>,
    },
    /// Grouped aggregation (`γ_{A,Ψ}`).
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Indices of group-by columns in the input schema.
        group_cols: Vec<usize>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
        /// Output schema: group columns then aggregate columns.
        schema: Schema,
        /// Stable id: the paper's `rel(γ)` lineage-block reference.
        agg_id: u32,
    },
    /// Presentation: ORDER BY + LIMIT. Applied to final results only.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// `(key expression, ascending)` pairs.
        keys: Vec<(Expr, bool)>,
        /// Optional row limit.
        limit: Option<u64>,
    },
}

impl Plan {
    /// Output schema of this node.
    pub fn schema(&self) -> &Schema {
        match self {
            Plan::Scan { schema, .. } => schema,
            Plan::Select { input, .. } => input.schema(),
            Plan::Project { schema, .. } => schema,
            Plan::Join { schema, .. } => schema,
            Plan::SemiJoin { left, .. } => left.schema(),
            Plan::Union { inputs } => inputs[0].schema(),
            Plan::Aggregate { schema, .. } => schema,
            Plan::Sort { input, .. } => input.schema(),
        }
    }

    /// Direct children.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } => vec![],
            Plan::Select { input, .. } | Plan::Sort { input, .. } => vec![input],
            Plan::Project { input, .. } | Plan::Aggregate { input, .. } => vec![input],
            Plan::Join { left, right, .. } | Plan::SemiJoin { left, right, .. } => {
                vec![left, right]
            }
            Plan::Union { inputs } => inputs.iter().collect(),
        }
    }

    /// Names of all base tables scanned anywhere in the plan.
    pub fn scanned_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let Plan::Scan { table, .. } = p {
                out.push(table.clone());
            }
        });
        out
    }

    /// All `agg_id`s appearing in the plan, in visit order.
    pub fn aggregate_ids(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let Plan::Aggregate { agg_id, .. } = p {
                out.push(*agg_id);
            }
        });
        out
    }

    /// Pre-order visit.
    pub fn visit(&self, f: &mut impl FnMut(&Plan)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// Number of operators.
    pub fn operator_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// EXPLAIN-style indented rendering.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0);
        s
    }

    fn explain_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let line = match self {
            Plan::Scan { table, .. } => format!("Scan {table}"),
            Plan::Select { predicate, .. } => format!("Select {predicate:?}"),
            Plan::Project { exprs, .. } => format!("Project {exprs:?}"),
            Plan::Join {
                left_keys,
                right_keys,
                ..
            } => {
                if left_keys.is_empty() {
                    "CrossJoin".to_string()
                } else {
                    format!("HashJoin {left_keys:?} = {right_keys:?}")
                }
            }
            Plan::SemiJoin {
                left_keys,
                right_keys,
                ..
            } => format!("SemiJoin {left_keys:?} IN {right_keys:?}"),
            Plan::Union { .. } => "UnionAll".to_string(),
            Plan::Aggregate {
                group_cols,
                aggs,
                agg_id,
                ..
            } => format!(
                "Aggregate[id={agg_id}] group={group_cols:?} aggs={}",
                aggs.iter()
                    .map(|a| format!("{}({:?})", a.kind.name(), a.input))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Plan::Sort { keys, limit, .. } => format!("Sort {keys:?} limit={limit:?}"),
        };
        out.push_str(&pad);
        out.push_str(&line);
        out.push('\n');
        for c in self.children() {
            c.explain_into(out, indent + 1);
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::BuiltinAgg;
    use iolap_relation::DataType;

    fn scan(name: &str, cols: &[(&str, DataType)]) -> Plan {
        Plan::Scan {
            table: name.into(),
            schema: Schema::from_pairs(cols),
        }
    }

    #[test]
    fn schema_propagates_through_select() {
        let p = Plan::Select {
            input: Box::new(scan("t", &[("a", DataType::Int)])),
            predicate: Expr::Lit(true.into()),
        };
        assert_eq!(p.schema().len(), 1);
    }

    #[test]
    fn scanned_tables_and_agg_ids() {
        let agg = Plan::Aggregate {
            input: Box::new(scan("sessions", &[("b", DataType::Float)])),
            group_cols: vec![],
            aggs: vec![AggCall {
                kind: AggKind::Builtin(BuiltinAgg::Avg),
                input: Expr::Col(0),
                name: "avg_b".into(),
            }],
            schema: Schema::from_pairs(&[("avg_b", DataType::Float)]),
            agg_id: 7,
        };
        let join = Plan::Join {
            left: Box::new(scan("sessions", &[("b", DataType::Float)])),
            right: Box::new(agg),
            left_keys: vec![],
            right_keys: vec![],
            schema: Schema::from_pairs(&[("b", DataType::Float), ("avg_b", DataType::Float)]),
        };
        assert_eq!(join.scanned_tables(), vec!["sessions", "sessions"]);
        assert_eq!(join.aggregate_ids(), vec![7]);
        assert_eq!(join.operator_count(), 4);
    }

    #[test]
    fn explain_renders_tree() {
        let p = scan("t", &[("a", DataType::Int)]);
        assert_eq!(p.explain(), "Scan t\n");
    }
}
