//! Hand-rolled JSON emission for the benchmark record (`--json` flag of the
//! `experiments` binary).
//!
//! The offline build carries no serde; the schema here is small and stable
//! enough that string assembly is the simpler dependency-free choice. The
//! emitted document captures, for every workload query: the exact-baseline
//! latency, then per-batch wall-clock, driver stats, and the per-operator
//! metrics breakdown recorded by `iolap_core::metrics`.

use crate::analysis::{run_analysis, AnalysisRecord};
use crate::durability::DurabilityRecord;
use crate::observe::TelemetryRecord;
use crate::serve::{ServeCell, ServingRecord};
use crate::shard::{ShardCell, ShardingRecord};
use crate::{
    fault_storm_kinds, measure_trace_overhead, total_latency, ExpScale, FaultStormRun,
    TraceOverhead, Workload,
};
use iolap_core::{BatchReport, Histogram, IolapConfig, Metrics, TraceMode};
use std::fmt::Write as _;

/// Version of the `BENCH_*.json` document layout. Bump on any breaking
/// change to key names or nesting so downstream diffing tools can refuse
/// records they do not understand.
///
/// * 1 — implicit (documents without the field): scale / verification /
///   faults / workloads.
/// * 2 — adds `schema_version`, `seed`, the full `config` snapshot, the
///   `trace_overhead` record, and per-batch `self_time_ns`.
/// * 3 — adds the `serving` section (multi-tenant sweep from
///   `experiments serve`: per-cell throughput, batch-latency quantiles,
///   per-session time-to-target, admission-probe outcome).
/// * 4 — adds the `analysis` section (static-analysis sweep from
///   `experiments analyze`: per-rule lint counts with finding detail,
///   allowlist absorption, and the plan-space model-checker report).
/// * 5 — adds the `sharding` section (scale-out sweep from
///   `experiments shard`: per-cell throughput and byte-identity vs the
///   unsharded baseline, dispatch/merge latency, shipped partial-state
///   bytes, the loopback TCP probe, and the 2-shard fault-storm replay).
/// * 6 — adds the `telemetry` section (telemetry-plane sweep from
///   `experiments observe`: exposition/trace determinism, cross-shard
///   canonical-trace identity, exposition-golden outcome, SLO burn
///   counters, and the measured fleet overhead against the 5 % budget);
///   the `sharding.tcp` probe also gains the `worker_folds` /
///   `worker_acked` / `worker_response_bytes` counters.
/// * 7 — adds the `durability` section (durable-store sweep from
///   `experiments durability`: crash-point-matrix cell counts with the
///   byte-identical tally, streaming-append Theorem-1 cells, replay
///   counters, and the fsync-on overhead against the 25 % budget).
pub const SCHEMA_VERSION: u32 = 7;

/// Escape a string for a JSON string literal (quotes not included).
///
/// One canonical implementation serves both the benchmark record and the
/// server's wire protocol: this is a thin re-export of
/// [`iolap_server::wire::escape`], so the two emitters can never drift.
pub fn escape(s: &str) -> String {
    iolap_server::wire::escape(s)
}

/// A finite JSON number; non-finite floats become `null` (JSON has no NaN).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Render a [`Metrics`] bag grouped by operator prefix:
/// `{"agg": {"agg.fold_ns": 12, ...}, "join": {...}}`.
pub fn metrics_json(m: &Metrics) -> String {
    let mut out = String::from("{");
    let mut first_group = true;
    for (op, entries) in m.by_operator() {
        if !first_group {
            out.push(',');
        }
        first_group = false;
        let _ = write!(out, "\"{}\":{{", escape(op));
        let mut first = true;
        for (name, v) in entries {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{v}", escape(name));
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// Full [`IolapConfig`] snapshot, so a benchmark record is reproducible
/// from its own header without consulting defaults that may drift.
pub fn config_json(c: &IolapConfig) -> String {
    let partition = match c.partition_mode {
        iolap_relation::PartitionMode::BlockShuffle { block_rows } => {
            format!("{{\"mode\":\"block_shuffle\",\"block_rows\":{block_rows}}}")
        }
        iolap_relation::PartitionMode::RowShuffle => "{\"mode\":\"row_shuffle\"}".to_string(),
        iolap_relation::PartitionMode::Sequential => "{\"mode\":\"sequential\"}".to_string(),
        iolap_relation::PartitionMode::StratifiedShuffle { column } => {
            format!("{{\"mode\":\"stratified_shuffle\",\"column\":{column}}}")
        }
    };
    let trace = match c.trace_mode {
        TraceMode::Off => "{\"mode\":\"off\"}".to_string(),
        TraceMode::Journal => "{\"mode\":\"journal\"}".to_string(),
        TraceMode::Flight { capacity } => {
            format!("{{\"mode\":\"flight\",\"capacity\":{capacity}}}")
        }
    };
    let faults = match &c.fault_plan {
        None => "null".to_string(),
        Some(p) => {
            let mut s = format!("{{\"seed\":{},\"faults\":[", p.seed);
            for (i, f) in p.faults.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"kind\":\"{}\",\"batch\":{}}}",
                    escape(f.kind.label()),
                    f.batch
                );
            }
            s.push_str("]}");
            s
        }
    };
    format!(
        concat!(
            "{{\"trials\":{},\"slack\":{},\"seed\":{},\"num_batches\":{},",
            "\"partition\":{},\"confidence\":{},\"opt_tuple_partition\":{},",
            "\"opt_lazy_lineage\":{},\"checkpoint_interval\":{},",
            "\"parallelism\":{},\"max_recovery_depth\":{},",
            "\"max_checkpoints\":{},\"fault_plan\":{},\"trace\":{}}}"
        ),
        c.trials,
        num(c.slack),
        c.seed,
        c.num_batches,
        partition,
        num(c.confidence),
        c.opt_tuple_partition,
        c.opt_lazy_lineage,
        c.checkpoint_interval,
        c.parallelism,
        c.max_recovery_depth,
        c.max_checkpoints,
        faults,
        trace,
    )
}

/// The tracing-overhead record: per-batch untraced/traced latency pairs on
/// the Fig 9(a) C2 sweep, totals, and the measured percentage against the
/// 5 % budget the trace layer is designed to.
pub fn trace_overhead_json(t: &TraceOverhead) -> String {
    let mut out = String::from("{\"query\":\"C2\",\"per_batch_ms\":[");
    for (i, (off, on)) in t.per_batch_ms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{}]", num(*off), num(*on));
    }
    let _ = write!(
        out,
        "],\"total_off_ms\":{},\"total_on_ms\":{},\"events\":{},\
         \"overhead_pct\":{},\"budget_pct\":5.0}}",
        num(t.total_off.as_secs_f64() * 1e3),
        num(t.total_on.as_secs_f64() * 1e3),
        t.events,
        num(t.pct()),
    );
    out
}

/// One batch report as a JSON object.
pub fn batch_json(r: &BatchReport) -> String {
    let mut self_time = String::from("{");
    for (i, (name, ns)) in r.self_time_ns.iter().enumerate() {
        if i > 0 {
            self_time.push(',');
        }
        let _ = write!(self_time, "\"{}\":{ns}", escape(name));
    }
    self_time.push('}');
    format!(
        concat!(
            "{{\"batch\":{},\"elapsed_ms\":{},\"fraction\":{},",
            "\"recovered\":{},\"recomputed_tuples\":{},\"shipped_bytes\":{},",
            "\"failures\":{},\"state_bytes_join\":{},\"state_bytes_other\":{},",
            "\"self_time_ns\":{},\"operators\":{}}}"
        ),
        r.batch,
        num(r.elapsed.as_secs_f64() * 1e3),
        num(r.fraction),
        r.recovered,
        r.stats.recomputed_tuples,
        r.stats.shipped_bytes,
        r.stats.failures,
        r.state_bytes_join,
        r.state_bytes_other,
        self_time,
        metrics_json(&r.metrics),
    )
}

/// Static-analysis record: per-rule plan-verifier counts across every
/// workload query (zero-filled, so "0 violations" is an explicit record)
/// plus per-rule source-lint violation counts after the audited allowlist
/// is subtracted.
pub fn verification_json(workloads: &[Workload]) -> String {
    let mut diags = Vec::new();
    let mut rewrite_errors = 0usize;
    for w in workloads {
        for q in &w.queries {
            let pq = w.plan(q);
            match iolap_analyze::verify_planned(&pq, q.stream_table) {
                Ok(d) => diags.extend(d),
                Err(_) => rewrite_errors += 1,
            }
        }
    }
    let root = iolap_analyze::repo_root();
    let allow =
        iolap_analyze::Allowlist::load(&root.join("scripts/lint-allow.txt")).unwrap_or_default();
    let findings = iolap_analyze::lint_tree(&root).unwrap_or_default();
    let allowlisted = findings.iter().filter(|f| allow.allows(f)).count();
    let violations: Vec<_> = findings
        .iter()
        .filter(|f| !allow.allows(f))
        .cloned()
        .collect();

    let mut out = String::from("{\"plan_rules\":{");
    for (i, (r, n)) in iolap_analyze::rule_counts(&diags).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{n}", r.id());
    }
    let _ = write!(
        out,
        "}},\"rewrite_errors\":{rewrite_errors},\"lint_rules\":{{"
    );
    for (i, (r, n)) in iolap_analyze::lint_counts(&violations).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{n}", r.id());
    }
    let _ = write!(out, "}},\"lint_allowlisted\":{allowlisted}}}");
    out
}

/// Static-analysis sweep record (`"analysis"` section): per-rule counts of
/// the lint violations that survive the allowlist (zero-filled, so a clean
/// run is an explicit record), the full finding detail, allowlist
/// absorption, and the plan-space model-checker report.
pub fn analysis_json(rec: &AnalysisRecord) -> String {
    let mut out = format!(
        "{{\"smoke\":{},\"wall_ms\":{},\"lint_rules\":{{",
        rec.smoke,
        num(rec.wall_ms)
    );
    for (i, (r, n)) in iolap_analyze::lint_counts(&rec.lint_violations)
        .iter()
        .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{n}", r.id());
    }
    let _ = write!(
        out,
        "}},\"lint_allowlisted\":{},\"lint_findings\":[",
        rec.lint_allowlisted
    );
    for (i, f) in rec.lint_violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&iolap_analyze::finding_json(f));
    }
    let _ = write!(out, "],\"model\":{}}}", rec.model.to_json());
    out
}

/// Fault-storm record: per-kind aggregates over the sweep plus the full
/// per-run detail, so a regression in any single cell stays attributable.
pub fn faults_json(storm: &[FaultStormRun]) -> String {
    let mut out = String::from("{\"kinds\":{");
    for (i, (kind, _)) in fault_storm_kinds().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let of_kind: Vec<_> = storm.iter().filter(|r| r.kind == *kind).collect();
        let _ = write!(
            out,
            "\"{}\":{{\"runs\":{},\"fired\":{},\"agree\":{}}}",
            escape(kind),
            of_kind.len(),
            of_kind.iter().filter(|r| r.fired > 0).count(),
            of_kind.iter().filter(|r| r.agree).count()
        );
    }
    out.push_str("},\"runs\":[");
    for (i, r) in storm.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            concat!(
                "{{\"workload\":\"{}\",\"query\":\"{}\",\"kind\":\"{}\",",
                "\"batch\":{},\"interval\":{},\"fired\":{},",
                "\"recoveries\":{},\"agree\":{}}}"
            ),
            escape(r.workload),
            escape(r.query),
            escape(r.kind),
            r.batch,
            r.interval,
            r.fired,
            r.recoveries,
            r.agree
        );
    }
    out.push_str("]}");
    out
}

/// Batch-latency distribution as quantiles. Empty histograms emit `null`
/// quantiles (never fabricated numbers — see `Histogram::quantile`).
fn latency_json(h: &Histogram) -> String {
    let q = |p: f64| {
        h.quantile(p)
            .map(|n| n.to_string())
            .unwrap_or_else(|| "null".to_string())
    };
    let bound = |b: Option<u64>| {
        b.map(|n| n.to_string())
            .unwrap_or_else(|| "null".to_string())
    };
    format!(
        concat!(
            "{{\"count\":{},\"min_ns\":{},\"max_ns\":{},",
            "\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}"
        ),
        h.count(),
        bound(h.min()),
        bound(h.max()),
        q(0.50),
        q(0.95),
        q(0.99),
    )
}

fn serve_cell_json(c: &ServeCell) -> String {
    let mut out = format!(
        concat!(
            "{{\"workers\":{},\"sessions\":{},\"arrival\":\"{}\",",
            "\"elapsed_ms\":{},\"batches_delivered\":{},",
            "\"throughput_batches_per_s\":{},\"batch_latency\":{},",
            "\"violations\":{},\"session_results\":["
        ),
        c.workers,
        c.sessions,
        escape(c.arrival),
        num(c.elapsed_ms),
        c.batches_delivered,
        num(c.throughput_batches_per_s),
        latency_json(&c.batch_latency),
        c.violations,
    );
    for (i, s) in c.session_results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            concat!(
                "{{\"label\":\"{}\",\"query\":\"{}\",\"policy\":\"{}\",",
                "\"state\":\"{}\",\"end\":\"{}\",\"batches_run\":{},",
                "\"total_batches\":{},\"stopped_early\":{},",
                "\"exact_vs_solo\":{},\"time_to_end_ms\":{}}}"
            ),
            escape(&s.label),
            escape(&s.query),
            escape(&s.policy),
            escape(&s.state),
            escape(&s.end),
            s.batches_run,
            s.total_batches,
            s.stopped_early,
            s.exact_vs_solo,
            num(s.time_to_end_ms),
        );
    }
    out.push_str("]}");
    out
}

/// Serving-layer record: the multi-tenant sweep cells plus the
/// admission-control probe outcome.
pub fn serving_json(rec: &ServingRecord) -> String {
    let mut out = format!(
        "{{\"smoke\":{},\"admission_probe\":{{\"rejected_when_full\":{}}},\"cells\":[",
        rec.smoke, rec.admission_rejected
    );
    for (i, c) in rec.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&serve_cell_json(c));
    }
    let _ = write!(out, "],\"violations\":{}}}", rec.violations());
    out
}

fn shard_cell_json(c: &ShardCell) -> String {
    format!(
        concat!(
            "{{\"query\":\"{}\",\"shards\":{},\"batches\":{},\"rows\":{},",
            "\"elapsed_ms\":{},\"rows_per_s\":{},\"dispatch_ms\":{},",
            "\"merge_ms\":{},\"bytes_shipped\":{},\"identical\":{}}}"
        ),
        escape(c.query),
        c.shards,
        c.batches,
        c.rows,
        num(c.elapsed_ms),
        num(c.rows_per_s),
        num(c.dispatch_ms),
        num(c.merge_ms),
        c.bytes_shipped,
        c.identical,
    )
}

/// Sharding record: the scale-out sweep cells (shards × batch counts,
/// `shards = 0` is the single-process baseline), the loopback TCP probe
/// with its measured data-shipped bytes (`null` when the sandbox denies
/// loopback), and the 2-shard fault-storm replay tally.
pub fn sharding_json(rec: &ShardingRecord) -> String {
    let mut out = format!("{{\"smoke\":{},\"cells\":[", rec.smoke);
    for (i, c) in rec.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&shard_cell_json(c));
    }
    let tcp = match &rec.tcp {
        None => "null".to_string(),
        Some(t) => format!(
            concat!(
                "{{\"shards\":{},\"identical\":{},\"bytes_shipped\":{},",
                "\"elapsed_ms\":{},\"worker_folds\":{},\"worker_acked\":{},",
                "\"worker_response_bytes\":{}}}"
            ),
            t.shards,
            t.identical,
            t.bytes_shipped,
            num(t.elapsed_ms),
            t.worker_folds,
            t.worker_acked,
            t.worker_response_bytes,
        ),
    };
    let _ = write!(
        out,
        concat!(
            "],\"tcp\":{},\"storm\":{{\"runs\":{},\"agree\":{}}},",
            "\"scaleout_win\":{},\"violations\":{}}}"
        ),
        tcp,
        rec.storm_runs,
        rec.storm_agree,
        rec.scaleout_win,
        rec.violations(),
    );
    out
}

/// Telemetry-plane record: determinism outcomes of the canonical
/// exposition/trace exports, the cross-shard trace-identity check, the
/// exposition-golden outcome, SLO burn counters, and the measured fleet
/// overhead against the 5 % budget (recorded, not asserted).
pub fn telemetry_json(rec: &TelemetryRecord) -> String {
    let s = &rec.slo;
    format!(
        concat!(
            "{{\"smoke\":{},\"sessions\":{},\"trace_events\":{},",
            "\"exposition_bytes\":{},\"determinism\":{{\"exposition\":{},",
            "\"trace\":{},\"cross_shard_trace\":{},\"golden\":{}}},",
            "\"slo\":{{\"ci_sessions\":{},\"ci_met\":{},\"ci_batches\":{},",
            "\"ci_batches_saved\":{},\"deadline_sessions\":{},",
            "\"deadline_met\":{},\"deadline_overrun\":{}}},",
            "\"overhead\":{{\"off_ms\":{},\"on_ms\":{},\"pct\":{},",
            "\"budget_pct\":5.0}},\"violations\":{}}}"
        ),
        rec.smoke,
        rec.sessions,
        rec.trace_events,
        rec.exposition_bytes,
        rec.exposition_deterministic,
        rec.trace_deterministic,
        rec.cross_shard_trace_identical,
        rec.golden_ok,
        s.ci_sessions,
        s.ci_met,
        s.ci_batches,
        s.ci_batches_saved,
        s.deadline_sessions,
        s.deadline_met,
        s.deadline_overrun,
        num(rec.overhead_off_ms),
        num(rec.overhead_on_ms),
        num(rec.overhead_pct()),
        rec.violations(),
    )
}

/// Durable-store record: crash-point-matrix outcomes (cells run vs
/// byte-identical after kill/restart/recover), streaming-append Theorem-1
/// cells, recovery replay counters, and the fsync-on overhead against the
/// 25 % budget (recorded, not asserted).
pub fn durability_json(rec: &DurabilityRecord) -> String {
    let queries = rec
        .queries
        .iter()
        .map(|q| format!("\"{}\"", escape(q)))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        concat!(
            "{{\"smoke\":{},\"queries\":[{}],\"batches\":{},",
            "\"matrix\":{{\"cells\":{},\"identical\":{}}},",
            "\"append\":{{\"cells\":{},\"exact\":{}}},",
            "\"replayed_batches\":{},\"reapplied_appends\":{},",
            "\"stale_digests\":{},",
            "\"fsync\":{{\"off_ms\":{},\"on_ms\":{},\"pct\":{},",
            "\"budget_pct\":25.0}},\"violations\":{}}}"
        ),
        rec.smoke,
        queries,
        rec.batches,
        rec.matrix_cells,
        rec.matrix_identical,
        rec.append_cells,
        rec.append_exact,
        rec.replayed_batches,
        rec.reapplied_appends,
        rec.stale_digests,
        num(rec.fsync_off_ms),
        num(rec.fsync_on_ms),
        num(rec.fsync_overhead_pct()),
        rec.violations(),
    )
}

/// Run every query of `workloads` through the iOLAP driver and write the
/// full per-query / per-batch / per-operator record to `path`. `storm`
/// (typically a smoke-scale `fault_storm` sweep) lands as the `"faults"`
/// section; `serving` (from an `experiments serve` sweep) as the
/// `"serving"` section, `null` when the sweep was not run; `analysis`
/// (from an `experiments analyze` sweep) as the `"analysis"` section — a
/// fresh smoke-depth sweep runs when this invocation did not include one,
/// so the record is always self-contained; `sharding` (from an
/// `experiments shard` sweep) as the `"sharding"` section, `null` when
/// the sweep was not run; `telemetry` (from an `experiments observe`
/// sweep) as the `"telemetry"` section, `null` when the sweep was not
/// run; `durability` (from an `experiments durability` sweep) as the
/// `"durability"` section, `null` when the sweep was not run.
#[allow(clippy::too_many_arguments)]
pub fn write_bench_json(
    path: &str,
    scale: &ExpScale,
    workloads: &[Workload],
    storm: &[FaultStormRun],
    serving: Option<&ServingRecord>,
    analysis: Option<&AnalysisRecord>,
    sharding: Option<&ShardingRecord>,
    telemetry: Option<&TelemetryRecord>,
    durability: Option<&DurabilityRecord>,
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        concat!(
            "\"schema_version\":{},\n\"seed\":{},\n",
            "\"scale\":{{\"tpch_sf\":{},\"conviva_rows\":{},\"batches\":{},",
            "\"trials\":{},\"seed\":{}}},\n\"config\":{},\n"
        ),
        SCHEMA_VERSION,
        scale.seed,
        num(scale.tpch_sf),
        scale.conviva_rows,
        scale.batches,
        scale.trials,
        scale.seed,
        config_json(&scale.config()),
    );
    let analysis = match analysis {
        Some(a) => analysis_json(a),
        None => analysis_json(&run_analysis(true)?),
    };
    let _ = write!(
        out,
        "\"trace_overhead\":{},\n\"verification\":{},\n\"analysis\":{},\n\"faults\":{},\n\"serving\":{},\n\"sharding\":{},\n\"telemetry\":{},\n\"durability\":{},\n\"workloads\":[\n",
        trace_overhead_json(&measure_trace_overhead(scale)),
        verification_json(workloads),
        analysis,
        faults_json(storm),
        serving
            .map(serving_json)
            .unwrap_or_else(|| "null".to_string()),
        sharding
            .map(sharding_json)
            .unwrap_or_else(|| "null".to_string()),
        telemetry
            .map(telemetry_json)
            .unwrap_or_else(|| "null".to_string()),
        durability
            .map(durability_json)
            .unwrap_or_else(|| "null".to_string()),
    );
    for (wi, w) in workloads.iter().enumerate() {
        if wi > 0 {
            out.push_str(",\n");
        }
        let _ = writeln!(out, "{{\"name\":\"{}\",\"queries\":[", escape(w.name));
        for (qi, q) in w.queries.iter().enumerate() {
            if qi > 0 {
                out.push_str(",\n");
            }
            let baseline = w.run_baseline(q);
            let (reports, cumulative) = w.run_iolap_with_metrics(q, scale.config());
            let _ = write!(
                out,
                concat!(
                    "{{\"id\":\"{}\",\"nested\":{},\"stream_table\":\"{}\",",
                    "\"baseline_ms\":{},\"total_ms\":{},\"cumulative\":{},",
                    "\"batches\":[\n"
                ),
                escape(q.id),
                q.nested,
                escape(q.stream_table),
                num(baseline.elapsed.as_secs_f64() * 1e3),
                num(total_latency(&reports).as_secs_f64() * 1e3),
                metrics_json(&cumulative),
            );
            for (bi, r) in reports.iter().enumerate() {
                if bi > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&batch_json(r));
            }
            out.push_str("\n]}");
        }
        out.push_str("\n]}");
    }
    out.push_str("\n]\n}\n");
    iolap_store::write_artifact(std::path::Path::new(path), out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn metrics_json_groups() {
        let mut m = Metrics::new();
        m.add("agg.fold_ns", 5);
        m.add("agg.fold_rows", 2);
        m.add("join.probe_rows", 7);
        let s = metrics_json(&m);
        assert_eq!(
            s,
            "{\"agg\":{\"agg.fold_ns\":5,\"agg.fold_rows\":2},\
             \"join\":{\"join.probe_rows\":7}}"
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(1.5), "1.5");
    }

    #[test]
    fn config_json_snapshots_every_knob() {
        let c = IolapConfig::with_batches(7)
            .trials(25)
            .seed(99)
            .flight_recorder();
        let s = config_json(&c);
        assert!(s.contains("\"num_batches\":7"), "{s}");
        assert!(s.contains("\"trials\":25"));
        assert!(s.contains("\"seed\":99"));
        assert!(s.contains("\"fault_plan\":null"));
        assert!(s.contains("\"trace\":{\"mode\":\"flight\",\"capacity\":"));
        let journal = config_json(&c.trace_mode(TraceMode::Journal));
        assert!(journal.contains("\"trace\":{\"mode\":\"journal\"}"));
    }

    #[test]
    fn config_json_records_fault_plans() {
        let c = IolapConfig::with_batches(4).fault_plan(
            iolap_core::FaultPlan::new(3).with(2, iolap_core::FaultKind::DropCheckpoint),
        );
        let s = config_json(&c);
        assert!(
            s.contains("\"fault_plan\":{\"seed\":3,\"faults\":[{\"kind\":\"drop_checkpoint\",\"batch\":2}]}"),
            "{s}"
        );
    }

    #[test]
    fn trace_overhead_json_shape() {
        let t = TraceOverhead {
            per_batch_ms: vec![(1.0, 1.05), (2.0, 2.1)],
            total_off: std::time::Duration::from_millis(3),
            total_on: std::time::Duration::from_micros(3090),
            events: 42,
        };
        let s = trace_overhead_json(&t);
        assert!(s.contains("\"per_batch_ms\":[[1,1.05],[2,2.1]]"), "{s}");
        assert!(s.contains("\"events\":42"));
        assert!(s.contains("\"budget_pct\":5.0"));
        assert!((t.pct() - 3.0).abs() < 0.1, "{}", t.pct());
    }

    #[test]
    fn faults_json_aggregates_per_kind() {
        let storm = vec![
            FaultStormRun {
                workload: "tpch",
                query: "Q17",
                kind: "fail_range",
                batch: 4,
                interval: 1,
                fired: 1,
                agree: true,
                recoveries: 1,
                dump: None,
            },
            FaultStormRun {
                workload: "tpch",
                query: "Q20",
                kind: "fail_range",
                batch: 4,
                interval: 1,
                fired: 0,
                agree: true,
                recoveries: 0,
                dump: None,
            },
        ];
        let s = faults_json(&storm);
        assert!(s.contains("\"fail_range\":{\"runs\":2,\"fired\":1,\"agree\":2}"));
        // Every registered kind appears even with zero runs.
        assert!(s.contains("\"perturb_ranges\":{\"runs\":0,\"fired\":0,\"agree\":0}"));
        assert!(s.contains("\"query\":\"Q17\""));
    }

    #[test]
    fn empty_latency_histogram_emits_null_quantiles() {
        let s = latency_json(&Histogram::new());
        assert!(
            s.contains("\"count\":0") && s.contains("\"p95_ns\":null"),
            "{s}"
        );
        let mut h = Histogram::new();
        h.observe(1_000);
        let s = latency_json(&h);
        // A single sample reports the exact observation, not a bucket guess.
        assert!(s.contains("\"p99_ns\":1000"), "{s}");
    }

    #[test]
    fn sharding_json_records_cells_probe_and_storm() {
        use crate::shard::TcpProbe;
        let rec = ShardingRecord {
            smoke: true,
            cells: vec![ShardCell {
                query: "C2",
                shards: 2,
                batches: 4,
                rows: 12_000,
                elapsed_ms: 80.0,
                rows_per_s: 150_000.0,
                dispatch_ms: 10.5,
                merge_ms: 1.25,
                bytes_shipped: 4096,
                identical: true,
            }],
            tcp: Some(TcpProbe {
                shards: 2,
                identical: true,
                bytes_shipped: 9999,
                elapsed_ms: 120.0,
                worker_folds: 8,
                worker_acked: 24,
                worker_response_bytes: 9999,
            }),
            storm_runs: 36,
            storm_agree: 36,
            scaleout_win: true,
        };
        let s = sharding_json(&rec);
        assert!(s.contains("\"shards\":2"), "{s}");
        assert!(s.contains("\"bytes_shipped\":4096"));
        assert!(
            s.contains("\"tcp\":{\"shards\":2,\"identical\":true"),
            "{s}"
        );
        assert!(s.contains("\"worker_folds\":8"), "{s}");
        assert!(s.contains("\"worker_response_bytes\":9999"), "{s}");
        assert!(s.contains("\"storm\":{\"runs\":36,\"agree\":36}"));
        assert!(s.contains("\"scaleout_win\":true"));
        assert!(s.contains("\"violations\":0}"), "{s}");
        let skipped = ShardingRecord { tcp: None, ..rec };
        assert!(sharding_json(&skipped).contains("\"tcp\":null"));
    }

    #[test]
    fn serving_json_records_cells_and_probe() {
        use crate::serve::{ServeSessionResult, ServingRecord};
        let cell = ServeCell {
            workers: 2,
            sessions: 1,
            arrival: "closed",
            elapsed_ms: 12.5,
            batches_delivered: 6,
            throughput_batches_per_s: 480.0,
            batch_latency: Histogram::new(),
            session_results: vec![ServeSessionResult {
                label: "s0:C2".into(),
                query: "C2".into(),
                policy: "complete".into(),
                state: "done".into(),
                end: "completed".into(),
                batches_run: 6,
                total_batches: 6,
                stopped_early: false,
                exact_vs_solo: true,
                time_to_end_ms: 11.0,
            }],
            violations: 0,
        };
        let rec = ServingRecord {
            smoke: true,
            cells: vec![cell],
            admission_rejected: true,
        };
        let s = serving_json(&rec);
        assert!(s.contains("\"admission_probe\":{\"rejected_when_full\":true}"));
        assert!(s.contains("\"arrival\":\"closed\""), "{s}");
        assert!(s.contains("\"exact_vs_solo\":true"));
        assert!(s.contains("\"violations\":0}"), "{s}");
    }

    #[test]
    fn telemetry_json_records_determinism_slo_and_overhead() {
        let rec = TelemetryRecord {
            smoke: true,
            sessions: 4,
            trace_events: 64,
            exposition_bytes: 1234,
            exposition_deterministic: true,
            trace_deterministic: true,
            cross_shard_trace_identical: true,
            golden_ok: false,
            slo: iolap_server::SloCounters {
                ci_sessions: 1,
                ci_met: 1,
                ci_batches: 2,
                ci_batches_saved: 4,
                deadline_sessions: 1,
                deadline_met: 1,
                deadline_overrun: 0,
            },
            overhead_off_ms: 10.0,
            overhead_on_ms: 10.3,
        };
        let s = telemetry_json(&rec);
        assert!(
            s.contains(
                "\"determinism\":{\"exposition\":true,\"trace\":true,\
                        \"cross_shard_trace\":true,\"golden\":false}"
            ),
            "{s}"
        );
        assert!(s.contains("\"ci_batches_saved\":4"), "{s}");
        assert!(s.contains("\"budget_pct\":5.0"), "{s}");
        assert!(s.contains("\"violations\":1}"), "{s}");
        assert!(
            iolap_server::wire::parse(&s).is_ok(),
            "telemetry_json must emit valid JSON: {s}"
        );
    }
}
