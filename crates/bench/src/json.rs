//! Hand-rolled JSON emission for the benchmark record (`--json` flag of the
//! `experiments` binary).
//!
//! The offline build carries no serde; the schema here is small and stable
//! enough that string assembly is the simpler dependency-free choice. The
//! emitted document captures, for every workload query: the exact-baseline
//! latency, then per-batch wall-clock, driver stats, and the per-operator
//! metrics breakdown recorded by `iolap_core::metrics`.

use crate::{fault_storm_kinds, total_latency, ExpScale, FaultStormRun, Workload};
use iolap_core::{BatchReport, Metrics};
use std::fmt::Write as _;

/// Escape a string for a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A finite JSON number; non-finite floats become `null` (JSON has no NaN).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Render a [`Metrics`] bag grouped by operator prefix:
/// `{"agg": {"agg.fold_ns": 12, ...}, "join": {...}}`.
pub fn metrics_json(m: &Metrics) -> String {
    let mut out = String::from("{");
    let mut first_group = true;
    for (op, entries) in m.by_operator() {
        if !first_group {
            out.push(',');
        }
        first_group = false;
        let _ = write!(out, "\"{}\":{{", escape(op));
        let mut first = true;
        for (name, v) in entries {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{v}", escape(name));
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// One batch report as a JSON object.
pub fn batch_json(r: &BatchReport) -> String {
    format!(
        concat!(
            "{{\"batch\":{},\"elapsed_ms\":{},\"fraction\":{},",
            "\"recovered\":{},\"recomputed_tuples\":{},\"shipped_bytes\":{},",
            "\"failures\":{},\"state_bytes_join\":{},\"state_bytes_other\":{},",
            "\"operators\":{}}}"
        ),
        r.batch,
        num(r.elapsed.as_secs_f64() * 1e3),
        num(r.fraction),
        r.recovered,
        r.stats.recomputed_tuples,
        r.stats.shipped_bytes,
        r.stats.failures,
        r.state_bytes_join,
        r.state_bytes_other,
        metrics_json(&r.metrics),
    )
}

/// Static-analysis record: per-rule plan-verifier counts across every
/// workload query (zero-filled, so "0 violations" is an explicit record)
/// plus per-rule source-lint violation counts after the audited allowlist
/// is subtracted.
pub fn verification_json(workloads: &[Workload]) -> String {
    let mut diags = Vec::new();
    let mut rewrite_errors = 0usize;
    for w in workloads {
        for q in &w.queries {
            let pq = w.plan(q);
            match iolap_analyze::verify_planned(&pq, q.stream_table) {
                Ok(d) => diags.extend(d),
                Err(_) => rewrite_errors += 1,
            }
        }
    }
    let root = iolap_analyze::repo_root();
    let allow =
        iolap_analyze::Allowlist::load(&root.join("scripts/lint-allow.txt")).unwrap_or_default();
    let findings = iolap_analyze::lint_tree(&root).unwrap_or_default();
    let allowlisted = findings.iter().filter(|f| allow.allows(f)).count();
    let violations: Vec<_> = findings
        .iter()
        .filter(|f| !allow.allows(f))
        .cloned()
        .collect();

    let mut out = String::from("{\"plan_rules\":{");
    for (i, (r, n)) in iolap_analyze::rule_counts(&diags).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{n}", r.id());
    }
    let _ = write!(
        out,
        "}},\"rewrite_errors\":{rewrite_errors},\"lint_rules\":{{"
    );
    for (i, (r, n)) in iolap_analyze::lint_counts(&violations).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{n}", r.id());
    }
    let _ = write!(out, "}},\"lint_allowlisted\":{allowlisted}}}");
    out
}

/// Fault-storm record: per-kind aggregates over the sweep plus the full
/// per-run detail, so a regression in any single cell stays attributable.
pub fn faults_json(storm: &[FaultStormRun]) -> String {
    let mut out = String::from("{\"kinds\":{");
    for (i, (kind, _)) in fault_storm_kinds().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let of_kind: Vec<_> = storm.iter().filter(|r| r.kind == *kind).collect();
        let _ = write!(
            out,
            "\"{}\":{{\"runs\":{},\"fired\":{},\"agree\":{}}}",
            escape(kind),
            of_kind.len(),
            of_kind.iter().filter(|r| r.fired > 0).count(),
            of_kind.iter().filter(|r| r.agree).count()
        );
    }
    out.push_str("},\"runs\":[");
    for (i, r) in storm.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            concat!(
                "{{\"workload\":\"{}\",\"query\":\"{}\",\"kind\":\"{}\",",
                "\"batch\":{},\"interval\":{},\"fired\":{},",
                "\"recoveries\":{},\"agree\":{}}}"
            ),
            escape(r.workload),
            escape(r.query),
            escape(r.kind),
            r.batch,
            r.interval,
            r.fired,
            r.recoveries,
            r.agree
        );
    }
    out.push_str("]}");
    out
}

/// Run every query of `workloads` through the iOLAP driver and write the
/// full per-query / per-batch / per-operator record to `path`. `storm`
/// (typically a smoke-scale `fault_storm` sweep) lands as the `"faults"`
/// section.
pub fn write_bench_json(
    path: &str,
    scale: &ExpScale,
    workloads: &[Workload],
    storm: &[FaultStormRun],
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        concat!(
            "\"scale\":{{\"tpch_sf\":{},\"conviva_rows\":{},\"batches\":{},",
            "\"trials\":{},\"seed\":{}}},\n"
        ),
        num(scale.tpch_sf),
        scale.conviva_rows,
        scale.batches,
        scale.trials,
        scale.seed,
    );
    let _ = write!(
        out,
        "\"verification\":{},\n\"faults\":{},\n\"workloads\":[\n",
        verification_json(workloads),
        faults_json(storm)
    );
    for (wi, w) in workloads.iter().enumerate() {
        if wi > 0 {
            out.push_str(",\n");
        }
        let _ = writeln!(out, "{{\"name\":\"{}\",\"queries\":[", escape(w.name));
        for (qi, q) in w.queries.iter().enumerate() {
            if qi > 0 {
                out.push_str(",\n");
            }
            let baseline = w.run_baseline(q);
            let (reports, cumulative) = w.run_iolap_with_metrics(q, scale.config());
            let _ = write!(
                out,
                concat!(
                    "{{\"id\":\"{}\",\"nested\":{},\"stream_table\":\"{}\",",
                    "\"baseline_ms\":{},\"total_ms\":{},\"cumulative\":{},",
                    "\"batches\":[\n"
                ),
                escape(q.id),
                q.nested,
                escape(q.stream_table),
                num(baseline.elapsed.as_secs_f64() * 1e3),
                num(total_latency(&reports).as_secs_f64() * 1e3),
                metrics_json(&cumulative),
            );
            for (bi, r) in reports.iter().enumerate() {
                if bi > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&batch_json(r));
            }
            out.push_str("\n]}");
        }
        out.push_str("\n]}");
    }
    out.push_str("\n]\n}\n");
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn metrics_json_groups() {
        let mut m = Metrics::new();
        m.add("agg.fold_ns", 5);
        m.add("agg.fold_rows", 2);
        m.add("join.probe_rows", 7);
        let s = metrics_json(&m);
        assert_eq!(
            s,
            "{\"agg\":{\"agg.fold_ns\":5,\"agg.fold_rows\":2},\
             \"join\":{\"join.probe_rows\":7}}"
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(1.5), "1.5");
    }

    #[test]
    fn faults_json_aggregates_per_kind() {
        let storm = vec![
            FaultStormRun {
                workload: "tpch",
                query: "Q17",
                kind: "fail_range",
                batch: 4,
                interval: 1,
                fired: 1,
                agree: true,
                recoveries: 1,
            },
            FaultStormRun {
                workload: "tpch",
                query: "Q20",
                kind: "fail_range",
                batch: 4,
                interval: 1,
                fired: 0,
                agree: true,
                recoveries: 0,
            },
        ];
        let s = faults_json(&storm);
        assert!(s.contains("\"fail_range\":{\"runs\":2,\"fired\":1,\"agree\":2}"));
        // Every registered kind appears even with zero runs.
        assert!(s.contains("\"perturb_ranges\":{\"runs\":0,\"fired\":0,\"agree\":0}"));
        assert!(s.contains("\"query\":\"Q17\""));
    }
}
