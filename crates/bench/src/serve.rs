//! Multi-tenant serving experiments: the closed-loop load generator behind
//! `experiments serve`, plus the TCP front-end runner (`serve --listen`).
//!
//! Each cell of the sweep starts an [`iolap_server::Server`] with a fixed
//! worker pool, submits `sessions` concurrent incremental queries (cycling
//! through built-in Conviva queries and a mix of stop policies), drains
//! every session from client threads, and checks the serving layer's core
//! contract cell by cell:
//!
//! * every session's final answer is **exact-equal** to its solo-run
//!   answer at the same batch index (concurrency must not change results);
//! * `RelativeCI` sessions stop **strictly before** full-data completion;
//! * admission **rejects** (never hangs) when slots and queue are full.
//!
//! Violations are counted and returned — the `experiments` binary exits
//! non-zero on any, which is what wires the smoke cell into
//! `scripts/check.sh`. The sweep record lands in `BENCH_PR5.json` under
//! the `"serving"` key (schema v3) with throughput, per-session
//! time-to-target, and p50/p95/p99 batch latencies.

use crate::{conviva_workload, ExpScale, Workload};
use iolap_core::{BatchReport, Histogram, IolapDriver};
use iolap_server::{
    tcp::SubmitFactory, wire::JVal, AdmitError, Server, ServerConfig, SessionSpec, StopPolicy,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Relative-CI target used by the accuracy-contract sessions in the sweep:
/// generous enough to be met within the first batches at smoke scale, so
/// the "stops strictly early" assertion is exercised, not vacuous.
pub const SWEEP_CI_TARGET: f64 = 0.5;

/// Canonical serialization of one report's *answer* (relation, names,
/// error estimates — no wall-clock): two reports with equal canon carry
/// byte-identical results. The multi-tenant exactness checks compare a
/// session's final report against the solo run's report at the same batch.
pub fn report_canon(r: &BatchReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "batch={} fraction={} recovered={}",
        r.batch, r.fraction, r.recovered
    );
    let _ = writeln!(s, "names={:?}", r.result.names);
    let _ = write!(s, "{}", r.result.relation);
    let _ = writeln!(s, "estimates={:?}", r.result.estimates);
    s
}

/// Outcome of one session in a sweep cell.
#[derive(Clone, Debug)]
pub struct ServeSessionResult {
    /// Session label (`"s0:C2"` …).
    pub label: String,
    /// Query id.
    pub query: String,
    /// Stop-policy label.
    pub policy: String,
    /// Final lifecycle state (`"done"` expected).
    pub state: String,
    /// End reason (`"completed"` / `"target_met"`).
    pub end: String,
    /// Batches the session actually ran.
    pub batches_run: usize,
    /// Batches a full run would take.
    pub total_batches: usize,
    /// Whether the stop policy retired the session strictly early.
    pub stopped_early: bool,
    /// Whether every received report was byte-identical to the solo run's
    /// report at the same batch index.
    pub exact_vs_solo: bool,
    /// Submit → finish wall-clock (the time-to-target axis).
    pub time_to_end_ms: f64,
}

/// One cell of the session-count × worker-count sweep.
#[derive(Clone, Debug)]
pub struct ServeCell {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Concurrent sessions submitted.
    pub sessions: usize,
    /// `"open"` (all admitted to live slots at once) or `"closed"`
    /// (live slots bounded at the worker count; the rest queue and are
    /// admitted as slots free).
    pub arrival: &'static str,
    /// Wall-clock for the whole cell.
    pub elapsed_ms: f64,
    /// Batches delivered across all sessions.
    pub batches_delivered: usize,
    /// Delivered batches per second of cell wall-clock.
    pub throughput_batches_per_s: f64,
    /// Per-batch latency distribution (driver-measured, nanoseconds).
    pub batch_latency: Histogram,
    /// Per-session outcomes.
    pub session_results: Vec<ServeSessionResult>,
    /// Contract violations detected in this cell.
    pub violations: usize,
}

/// The full `experiments serve` record.
#[derive(Clone, Debug)]
pub struct ServingRecord {
    /// Whether this was the pinned smoke configuration.
    pub smoke: bool,
    /// Sweep cells in run order.
    pub cells: Vec<ServeCell>,
    /// Whether the admission probe was explicitly rejected (never hung).
    pub admission_rejected: bool,
}

impl ServingRecord {
    /// Total contract violations across the record.
    pub fn violations(&self) -> usize {
        let cells: usize = self.cells.iter().map(|c| c.violations).sum();
        cells + usize::from(!self.admission_rejected)
    }
}

/// The query/policy mix for `n` sessions: queries cycle through distinct
/// built-ins, policies cycle through run-to-completion, an accuracy
/// contract, and a fixed batch budget.
fn session_plan(n: usize, total_batches: usize) -> Vec<(&'static str, StopPolicy)> {
    const QUERIES: &[&str] = &["C2", "C3", "SBI", "C1"];
    (0..n)
        .map(|i| {
            let q = QUERIES[i % QUERIES.len()];
            let policy = match i % 4 {
                0 | 1 => StopPolicy::complete(),
                2 => StopPolicy::RelativeCI {
                    target: SWEEP_CI_TARGET,
                    confidence: 0.95,
                },
                _ => StopPolicy::Batches((total_batches / 2).max(1)),
            };
            (q, policy)
        })
        .collect()
}

fn build_driver(w: &Workload, query: &str, scale: &ExpScale) -> IolapDriver {
    let q = w
        .queries
        .iter()
        .find(|q| q.id == query)
        .unwrap_or_else(|| panic!("unknown serve query {query}"))
        .clone();
    let pq = w.plan(&q);
    IolapDriver::from_plan(&pq, &w.catalog, q.stream_table, scale.config())
        .unwrap_or_else(|e| panic!("{query}: {e}"))
}

/// Solo-run reference canon per query: `canon[i]` is the canonical answer
/// after batch `i` when the query runs alone — the exactness baseline.
pub fn solo_reference(
    w: &Workload,
    queries: &[&'static str],
    scale: &ExpScale,
) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    for q in queries {
        if out.contains_key(*q) {
            continue;
        }
        let mut d = build_driver(w, q, scale);
        let reports = d.run_to_completion().unwrap_or_else(|e| panic!("{q}: {e}"));
        out.insert(q.to_string(), reports.iter().map(report_canon).collect());
    }
    out
}

/// Run one sweep cell. Every session's drained report stream is checked
/// batch-by-batch against the solo reference.
pub fn run_cell(
    w: &Workload,
    scale: &ExpScale,
    workers: usize,
    sessions: usize,
    arrival: &'static str,
    solo: &BTreeMap<String, Vec<String>>,
) -> ServeCell {
    let plan = session_plan(sessions, scale.batches);
    let max_live = match arrival {
        "closed" => workers.max(2),
        _ => sessions.max(1),
    };
    let cfg = ServerConfig::with_workers(workers)
        .max_live(max_live)
        .max_queued(sessions);
    let server = Server::new(cfg);
    let cell_span = iolap_core::Span::start();

    let handles: Vec<_> = plan
        .iter()
        .enumerate()
        .map(|(i, (query, policy))| {
            let driver = build_driver(w, query, scale);
            let spec = SessionSpec::named(format!("s{i}:{query}")).policy(policy.clone());
            let handle = server
                .submit(driver, spec)
                .unwrap_or_else(|e| panic!("cell submit {i} rejected: {e}"));
            (i, *query, policy.label(), handle)
        })
        .collect();

    // One client thread per session, as a real serving deployment would
    // poll: drain until terminal, then snapshot the summary.
    let drained: Vec<_> = std::thread::scope(|scope| {
        let threads: Vec<_> = handles
            .iter()
            .map(|(_, _, _, handle)| {
                scope.spawn(move || {
                    let reports = handle.drain(Duration::from_secs(30));
                    (reports, handle.summary())
                })
            })
            .collect();
        threads
            .into_iter()
            .map(|t| t.join().expect("client thread"))
            .collect()
    });
    let elapsed = cell_span.elapsed();

    let mut batch_latency = Histogram::new();
    let mut batches_delivered = 0usize;
    let mut session_results = Vec::new();
    let mut violations = 0usize;
    for ((i, query, policy_label, _), (reports, summary)) in handles.iter().zip(drained.iter()) {
        batches_delivered += reports.len();
        for r in reports {
            batch_latency.observe(u64::try_from(r.elapsed.as_nanos()).unwrap_or(u64::MAX));
        }
        let reference = &solo[*query];
        let exact = reports
            .iter()
            .enumerate()
            .all(|(k, r)| reference.get(k).is_some_and(|c| *c == report_canon(r)));
        let is_relci = policy_label.starts_with("relative_ci");
        let done = summary.state.is_terminal() && summary.end.is_some();
        let stopped_early = summary.stopped_early();
        if !done || !exact {
            violations += 1;
        }
        if is_relci && !stopped_early {
            // The accuracy contract must fire strictly before completion.
            violations += 1;
        }
        session_results.push(ServeSessionResult {
            label: format!("s{i}:{query}"),
            query: query.to_string(),
            policy: policy_label.clone(),
            state: summary.state.as_str().to_string(),
            end: summary
                .end
                .as_ref()
                .map(|e| e.label().to_string())
                .unwrap_or_else(|| "none".to_string()),
            batches_run: summary.batches_run,
            total_batches: summary.total_batches,
            stopped_early,
            exact_vs_solo: exact,
            time_to_end_ms: summary
                .elapsed
                .map(|d| d.as_secs_f64() * 1e3)
                .unwrap_or(f64::NAN),
        });
    }
    server.shutdown();
    let secs = elapsed.as_secs_f64();
    ServeCell {
        workers,
        sessions,
        arrival,
        elapsed_ms: secs * 1e3,
        batches_delivered,
        throughput_batches_per_s: if secs > 0.0 {
            batches_delivered as f64 / secs
        } else {
            0.0
        },
        batch_latency,
        session_results,
        violations,
    }
}

/// Admission-control probe: a 1-slot, 1-queue server receives three
/// long-running submissions back to back. The third must come back as an
/// explicit [`AdmitError::QueueFull`] — immediately, not after a stall.
/// `report_buffer(1)` parks the worker after its first report (nobody
/// polls), so the live session cannot finish and free its slot mid-probe
/// no matter how the threads are scheduled.
pub fn admission_probe(w: &Workload, scale: &ExpScale) -> bool {
    let server = Server::new(
        ServerConfig::with_workers(1)
            .max_live(1)
            .max_queued(1)
            .report_buffer(1),
    );
    let h1 = server.submit(
        build_driver(w, "C2", scale),
        SessionSpec::named("probe-live"),
    );
    let h2 = server.submit(
        build_driver(w, "C2", scale),
        SessionSpec::named("probe-queued"),
    );
    let h3 = server.submit(
        build_driver(w, "C2", scale),
        SessionSpec::named("probe-overflow"),
    );
    let rejected = matches!(h3, Err(AdmitError::QueueFull { .. }));
    if let Ok(h) = &h1 {
        h.cancel();
    }
    if let Ok(h) = &h2 {
        h.cancel();
    }
    server.shutdown();
    rejected && h1.is_ok() && h2.is_ok()
}

/// The sweep cells: `(workers, sessions, arrival)`.
fn sweep_cells(smoke: bool) -> Vec<(usize, usize, &'static str)> {
    if smoke {
        // The pinned check.sh gate: 2 workers × 4 sessions.
        vec![(2, 4, "closed")]
    } else {
        vec![
            // The acceptance cell: ≥8 sessions, ≥2 queries, 4 workers.
            (4, 8, "open"),
            (4, 8, "closed"),
            (2, 8, "closed"),
            (1, 4, "closed"),
            (4, 16, "open"),
        ]
    }
}

/// Run the serving sweep. `smoke` pins the scale (independent of
/// `IOLAP_SCALE`, like `trace --smoke`) so the offline gate is fast and
/// stable. Returns the record plus the violation count.
pub fn serve_sweep(scale: &ExpScale, smoke: bool) -> (ServingRecord, usize) {
    let scale = if smoke {
        ExpScale {
            tpch_sf: 0.1,
            conviva_rows: 600,
            batches: 6,
            trials: 16,
            seed: 2016,
        }
    } else {
        *scale
    };
    let w = conviva_workload(&scale);
    let queries: Vec<&'static str> = vec!["C2", "C3", "SBI", "C1"];
    println!(
        "serve: solo reference runs ({} queries at {} rows × {} batches)",
        queries.len(),
        scale.conviva_rows,
        scale.batches
    );
    let solo = solo_reference(&w, &queries, &scale);

    let mut cells = Vec::new();
    for (workers, sessions, arrival) in sweep_cells(smoke) {
        let cell = run_cell(&w, &scale, workers, sessions, arrival, &solo);
        println!(
            "serve: {}w × {}s ({}) — {} batches in {:.1} ms ({:.0} batches/s), \
             p50/p95/p99 batch = {}/{}/{} µs, violations={}",
            cell.workers,
            cell.sessions,
            cell.arrival,
            cell.batches_delivered,
            cell.elapsed_ms,
            cell.throughput_batches_per_s,
            cell.batch_latency
                .quantile(0.50)
                .map(|n| (n / 1_000).to_string())
                .unwrap_or_else(|| "-".into()),
            cell.batch_latency
                .quantile(0.95)
                .map(|n| (n / 1_000).to_string())
                .unwrap_or_else(|| "-".into()),
            cell.batch_latency
                .quantile(0.99)
                .map(|n| (n / 1_000).to_string())
                .unwrap_or_else(|| "-".into()),
            cell.violations,
        );
        for s in &cell.session_results {
            if !s.exact_vs_solo || s.state != "done" {
                println!(
                    "serve:   VIOLATION {} policy={} state={} end={} exact={}",
                    s.label, s.policy, s.state, s.end, s.exact_vs_solo
                );
            }
        }
        cells.push(cell);
    }

    let admission_rejected = admission_probe(&w, &scale);
    println!(
        "serve: admission probe (1 slot + 1 queued + 1 overflow) — {}",
        if admission_rejected {
            "third submission explicitly rejected"
        } else {
            "VIOLATION: overflow was not rejected"
        }
    );
    let record = ServingRecord {
        smoke,
        cells,
        admission_rejected,
    };
    let violations = record.violations();
    (record, violations)
}

/// Run the TCP front-end until the process is killed: builds the Conviva
/// workload at `scale`, binds `addr`, and serves the newline-delimited
/// JSON protocol. Submit requests name a built-in query:
/// `{"op":"submit","query":"C2","label":"u1","policy":{"kind":"relative_ci","target":0.1}}`.
pub fn serve_listen(addr: &str, scale: &ExpScale) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    println!(
        "iolap-server listening on {} (conviva at {} rows × {} batches; \
         ops: submit/poll/summary/cancel/stats)",
        listener.local_addr()?,
        scale.conviva_rows,
        scale.batches
    );
    let server = Arc::new(Server::new(ServerConfig::with_workers(4)));
    let factory = workload_factory(conviva_workload(scale), *scale);
    iolap_server::tcp::serve(listener, server, factory);
    Ok(())
}

/// A [`SubmitFactory`] serving a prepared workload's queries by id, with
/// optional per-request `batches`/`trials`/`seed` overrides.
pub fn workload_factory(w: Workload, scale: ExpScale) -> SubmitFactory {
    Arc::new(move |req: &JVal| {
        let query = req
            .get("query")
            .and_then(JVal::as_str)
            .ok_or_else(|| "missing \"query\"".to_string())?;
        let q = w
            .queries
            .iter()
            .find(|q| q.id == query)
            .ok_or_else(|| format!("unknown query {query:?}"))?
            .clone();
        let mut scale = scale;
        if let Some(b) = req.get("batches").and_then(JVal::as_u64) {
            scale.batches = (b as usize).clamp(1, 1_000);
        }
        if let Some(t) = req.get("trials").and_then(JVal::as_u64) {
            scale.trials = (t as usize).clamp(1, 10_000);
        }
        if let Some(s) = req.get("seed").and_then(JVal::as_u64) {
            scale.seed = s;
        }
        let pq = w.plan(&q);
        let driver = IolapDriver::from_plan(&pq, &w.catalog, q.stream_table, scale.config())
            .map_err(|e| e.to_string())?;
        let spec = iolap_server::tcp::spec_from_request(req);
        Ok((driver, spec))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_plan_cycles_queries_and_policies() {
        let plan = session_plan(8, 6);
        let distinct: std::collections::BTreeSet<_> = plan.iter().map(|(q, _)| *q).collect();
        assert!(
            distinct.len() >= 2,
            "need ≥2 distinct queries: {distinct:?}"
        );
        assert!(plan
            .iter()
            .any(|(_, p)| matches!(p, StopPolicy::RelativeCI { .. })));
        assert!(plan.iter().any(|(_, p)| *p == StopPolicy::complete()));
    }

    #[test]
    fn smoke_cell_is_pinned_to_two_workers_four_sessions() {
        assert_eq!(sweep_cells(true), vec![(2, 4, "closed")]);
        let full = sweep_cells(false);
        assert!(
            full.iter().any(|&(w, s, _)| w == 4 && s >= 8),
            "acceptance cell missing: {full:?}"
        );
    }
}
