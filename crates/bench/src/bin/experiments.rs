//! Regenerates every table and figure of the iOLAP paper's evaluation (§8).
//!
//! ```text
//! cargo run --release -p iolap-bench --bin experiments -- all
//! cargo run --release -p iolap-bench --bin experiments -- fig7a fig8 fig9d
//! IOLAP_SCALE=0.5 cargo run --release -p iolap-bench --bin experiments -- fig10
//! cargo run --release -p iolap-bench --bin experiments -- all --json BENCH_PR1.json
//! IOLAP_SCALE=bench cargo run --release -p iolap-bench --bin experiments -- verify-plans
//! IOLAP_SCALE=bench cargo run --release -p iolap-bench --bin experiments -- faultstorm --smoke
//! IOLAP_SCALE=bench cargo run --release -p iolap-bench --bin experiments -- serve --smoke
//! IOLAP_SCALE=bench cargo run --release -p iolap-bench --bin experiments -- shard --smoke
//! cargo run --release -p iolap-bench --bin experiments -- observe --smoke
//! cargo run --release -p iolap-bench --bin experiments -- durability --smoke
//! cargo run --release -p iolap-bench --bin experiments -- serve --listen 127.0.0.1:7878
//! ```
//!
//! `verify-plans` (not part of `all`) rewrites every built-in query and runs
//! the static plan verifier over the result, printing per-rule counts and
//! exiting nonzero on any violation — the offline gate `scripts/check.sh`
//! runs.
//!
//! `faultstorm` (not part of `all`) sweeps the deterministic §5.1 fault
//! injector — forced range failures, dropped/corrupted checkpoints,
//! panicking workers/derefs, perturbed ranges — across batch points and
//! checkpoint intervals on the nested flagship queries, and fails if any
//! run's final answer disagrees with the exact offline baseline.
//! `--smoke` shrinks the sweep for the offline gate.
//!
//! `serve` (not part of `all`) runs the multi-tenant serving sweep:
//! concurrent incremental sessions over the built-in Conviva queries on a
//! fixed worker pool, checking every session's final answer against its
//! solo run, that accuracy-contract (`RelativeCI`) sessions stop strictly
//! early, and that admission rejects rather than hangs when full.
//! `--smoke` pins a 2-worker × 4-session cell for the offline gate;
//! `--listen ADDR` instead serves the newline-delimited JSON protocol on
//! a TCP socket until killed.
//!
//! `kernels` (not part of `all`) micro-benchmarks the columnar kernels —
//! comparison filters, aggregate trial folds, and the Poisson block draw —
//! against their row-at-a-time references, and fails on any result that is
//! not bit-identical to the reference. `--smoke` shrinks the row count for
//! the offline gate.
//!
//! `analyze` (not part of `all`) runs the static-analysis engine end to
//! end: the token-based source lints over every `crates/**/*.rs` file
//! (allowlist-subtracted, with dead-allowlist-entry staleness as L010
//! errors) and the exhaustive plan-space model checker — every operator
//! tree over the two-table model world, each through the rewriter and the
//! V001–V010 verifier, against an independent uncertainty-tag model, plus
//! guaranteed-catch mutation probes on every accepted cell. `--smoke`
//! bounds the enumeration at depth 3 for the offline gate; the full run
//! covers depth 4. Exit 0 clean, 1 on findings, 2 on internal error.
//!
//! `shard` (not part of `all`) runs the scale-out sweep: the same
//! mini-batch runs with fold dispatch split across in-process shard pools
//! of growing size, checking every sharded run's published answers are
//! byte-identical to the unsharded baseline (the partition-grid merge
//! contract), probing the same claim across real loopback TCP shard
//! workers with measured data-shipped bytes, and replaying the §5.1 fault
//! storm at two shards. `--smoke` pins one grid point per axis for the
//! offline gate. Throughput and shipped bytes are recorded, not asserted.
//!
//! `observe` (not part of `all`) runs the telemetry-plane sweep: a pinned
//! multi-tenant fleet with the scheduler journal armed, byte-comparing the
//! canonical Prometheus-style exposition and canonical scheduler trace
//! across repeated runs, checking driver-level canonical traces are
//! byte-identical across shard counts 0/1/2/4, and measuring the fleet's
//! journal-on vs journal-off overhead against the 5 % budget. `--smoke`
//! pins the scale and byte-checks the exposition against
//! `scripts/observe-exposition.golden` (regenerate: `IOLAP_UPDATE_GOLDEN=1`).
//!
//! `durability` (not part of `all`) runs the durable-store sweep: for
//! every batch boundary of every swept query a durable single-worker
//! server is killed mid-run, restarted over the same log directory, and
//! recovered, with the resumed report stream byte-compared against an
//! uninterrupted run; a streaming-append cell byte-compares the grown
//! stream against a driver-level oracle appending the same rows at the
//! same position; and the same session is timed fsync-off vs fsync-on
//! against the 25 % budget (recorded, not asserted). `--smoke` pins the
//! scale to six batches and sweeps every built-in Conviva query for the
//! offline gate; the full sweep takes four representative queries to
//! the full scale.
//!
//! `trace <query>` (not part of `all`) runs one query (default `C2`) with
//! the causal event journal armed and renders a per-batch timeline, a
//! top-k exclusive self-time table, and per-operator latency quantiles,
//! then writes JSONL and Chrome `trace_event` exports. `trace --smoke`
//! byte-checks the normalized Chrome export against
//! `scripts/trace-schema.golden` (regenerate: `IOLAP_UPDATE_GOLDEN=1`).
//!
//! `--json <path>` additionally writes a machine-readable record of every
//! workload query — per-batch timings, driver stats, and the per-operator
//! metrics breakdown — after the selected experiments finish.
//!
//! Absolute numbers differ from the paper (its substrate was a 20-node
//! Spark/EC2 cluster over 1–2 TB; ours is a single-process engine over
//! synthetic data) — the *shapes* are what reproduce: who wins, growth
//! trends, crossovers. See `EXPERIMENTS.md` for the side-by-side record.

use iolap_bench::*;
use iolap_core::IolapConfig;
use iolap_relation::BatchedRelation;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut smoke = false;
    let mut listen: Option<String> = None;
    let mut trace_query: Option<String> = None;
    let mut args: Vec<String> = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        let a = raw[i].as_str();
        if a == "--json" {
            i += 1;
            match raw.get(i) {
                Some(p) => json_path = Some(p.clone()),
                None => {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }
            }
        } else if a == "--smoke" {
            smoke = true;
        } else if a == "--listen" {
            i += 1;
            match raw.get(i) {
                Some(addr) => listen = Some(addr.clone()),
                None => {
                    eprintln!("--listen requires an ADDR:PORT argument");
                    std::process::exit(2);
                }
            }
        } else if a == "trace" {
            args.push(a.to_string());
            // Optional query id operand: `trace C8` (default C2).
            if let Some(q) = raw.get(i + 1) {
                if !q.starts_with('-') {
                    trace_query = Some(q.clone());
                    i += 1;
                }
            }
        } else {
            args.push(a.to_string());
        }
        i += 1;
    }
    let scale = ExpScale::from_env();
    let which: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1", "fig7a", "fig7b", "fig7c", "fig8ab", "fig8cd", "fig8ef", "fig9a", "fig9bc",
            "fig9de", "fig9fg", "fig10ab", "fig10cd", "fig10ef", "trials", "metrics",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    println!("iOLAP experiment harness (scale: {scale:?})");
    let mut unknown = false;
    let mut violations = 0usize;
    let mut storm: Option<Vec<FaultStormRun>> = None;
    let mut serving: Option<serve::ServingRecord> = None;
    let mut analysis: Option<AnalysisRecord> = None;
    let mut sharding: Option<ShardingRecord> = None;
    let mut telemetry: Option<TelemetryRecord> = None;
    let mut durability: Option<DurabilityRecord> = None;
    for exp in which {
        match exp {
            "verify-plans" => violations += verify_plans(&scale),
            "analyze" => match analyze_cmd(smoke) {
                Ok(rec) => {
                    violations += rec.violations();
                    analysis = Some(rec);
                }
                Err(e) => {
                    eprintln!("analyze: {e}");
                    std::process::exit(2);
                }
            },
            "serve" => {
                if let Some(addr) = listen.as_deref() {
                    if let Err(e) = serve::serve_listen(addr, &scale) {
                        eprintln!("serve --listen {addr}: {e}");
                        std::process::exit(1);
                    }
                } else {
                    section(&format!(
                        "serve: multi-tenant serving sweep ({})",
                        if smoke { "smoke" } else { "full" }
                    ));
                    let (record, v) = serve::serve_sweep(&scale, smoke);
                    violations += v;
                    serving = Some(record);
                }
            }
            "faultstorm" => {
                let runs = faultstorm(&scale, smoke);
                violations += runs.iter().filter(|r| !r.agree).count();
                storm = Some(runs);
            }
            "shard" => {
                section(&format!(
                    "shard: scale-out determinism sweep ({})",
                    if smoke { "smoke" } else { "full" }
                ));
                let (record, v) = shard_sweep(&scale, smoke);
                violations += v;
                sharding = Some(record);
            }
            "observe" => {
                section(&format!(
                    "observe: telemetry-plane sweep ({})",
                    if smoke { "smoke" } else { "full" }
                ));
                let (record, v) = observe_sweep(&scale, smoke);
                violations += v;
                telemetry = Some(record);
            }
            "durability" => {
                section(&format!(
                    "durability: crash-matrix / streaming-append sweep ({})",
                    if smoke { "smoke" } else { "full" }
                ));
                let (record, v) = durability_sweep(&scale, smoke);
                violations += v;
                durability = Some(record);
            }
            "trace" => violations += trace_cmd(&scale, trace_query.as_deref(), smoke),
            "kernels" => violations += kernels_cmd(&scale, smoke),
            "table1" => table1(&scale),
            "fig7a" => fig7a(&scale),
            "fig7b" => fig7bc(&scale, true),
            "fig7c" => fig7bc(&scale, false),
            "fig8ab" => fig8_ratio(&scale, true),
            "fig8cd" => fig8_ratio(&scale, false),
            "fig8ef" => fig8_recomputed(&scale),
            "fig9a" => fig9a(&scale),
            "fig9bc" => fig9bc(&scale, true),
            "fig9de" => fig9de(&scale, false),
            "fig9fg" => fig9fg(&scale),
            "fig10ab" => fig10ab(&scale),
            "fig10cd" => fig9bc(&scale, false),
            "fig10ef" => fig9de(&scale, true),
            "trials" => trials_sweep(&scale),
            "metrics" => metrics_breakdown(&scale),
            other => {
                eprintln!("unknown experiment `{other}`");
                unknown = true;
            }
        }
    }
    if unknown {
        std::process::exit(2);
    }
    if violations > 0 {
        eprintln!("verification: {violations} violation(s)");
        std::process::exit(1);
    }

    if let Some(path) = json_path {
        section(&format!("benchmark record → {path}"));
        let workloads = [tpch_workload(&scale), conviva_workload(&scale)];
        // The "faults" section reuses this invocation's storm when one ran,
        // else records a fresh smoke storm so the record is self-contained.
        let storm = storm.unwrap_or_else(|| fault_storm(&scale, true));
        match json::write_bench_json(
            &path,
            &scale,
            &workloads,
            &storm,
            serving.as_ref(),
            analysis.as_ref(),
            sharding.as_ref(),
            telemetry.as_ref(),
            durability.as_ref(),
        ) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// `faultstorm`: deterministic §5.1 fault-injection sweep (see
/// `iolap_bench::fault_storm`). Prints one line per run plus a per-kind
/// summary; returns the sweep's runs for the `--json` record. Any run
/// whose final answer disagrees with the exact offline baseline counts as
/// a violation and fails the harness.
fn faultstorm(scale: &ExpScale, smoke: bool) -> Vec<FaultStormRun> {
    section(&format!(
        "faultstorm: §5.1 fault-injection sweep ({})",
        if smoke { "smoke" } else { "full" }
    ));
    let runs = fault_storm(scale, smoke);
    println!(
        "{:<9} {:<5} {:<19} {:>6} {:>9} {:>6} {:>11} {:>7}",
        "workload", "query", "fault", "batch", "interval", "fired", "recoveries", "final"
    );
    for r in &runs {
        println!(
            "{:<9} {:<5} {:<19} {:>6} {:>9} {:>6} {:>11} {:>7}",
            r.workload,
            r.query,
            r.kind,
            r.batch,
            r.interval,
            r.fired,
            r.recoveries,
            if r.agree { "exact" } else { "WRONG" }
        );
    }
    for (kind, _) in fault_storm_kinds() {
        let of_kind: Vec<_> = runs.iter().filter(|r| r.kind == kind).collect();
        println!(
            "{kind}: {} runs, {} fired, {} agree",
            of_kind.len(),
            of_kind.iter().filter(|r| r.fired > 0).count(),
            of_kind.iter().filter(|r| r.agree).count()
        );
    }
    // Every storm run flies with the flight recorder armed; show the most
    // informative black box so the injected fault, any recovery cascade,
    // and each replay are readable straight from the harness output.
    match storm_flight_dump(&runs) {
        Some(dump) => println!("\nrepresentative flight-recorder dump:\n{dump}"),
        None => println!("\n(no flight-recorder dump captured — no fault fired)"),
    }
    runs
}

/// `trace <query>`: run one query with the full event journal armed and
/// render its causal trace — a per-batch timeline, a top-k exclusive
/// self-time table, and per-operator latency quantiles — then write both
/// exporters' output (`TRACE_<id>.jsonl`, `TRACE_<id>.trace.json`; the
/// latter loads in `chrome://tracing` / Perfetto).
///
/// `--smoke` instead runs a pinned tiny configuration (Conviva 300 rows,
/// 3 batches, seed 2016 — independent of `IOLAP_SCALE`) and byte-compares
/// the *normalized* Chrome export against `scripts/trace-schema.golden`,
/// failing on any drift in the event schema or in seeded determinism.
/// `IOLAP_UPDATE_GOLDEN=1` regenerates the golden file after an audited
/// schema change. Returns the number of violations (0 or 1).
fn trace_cmd(scale: &ExpScale, query: Option<&str>, smoke: bool) -> usize {
    use iolap_core::{export_chrome, export_jsonl, EventKind};
    let id = query.unwrap_or("C2");
    let scale = if smoke {
        ExpScale {
            tpch_sf: 0.1,
            conviva_rows: 300,
            batches: 3,
            trials: 10,
            seed: 2016,
        }
    } else {
        *scale
    };
    section(&format!(
        "trace: causal event journal, {id} ({})",
        if smoke { "smoke" } else { "full" }
    ));
    let w = if id.starts_with('Q') {
        tpch_workload(&scale)
    } else {
        conviva_workload(&scale)
    };
    let Some(q) = w.queries.iter().find(|q| q.id == id).cloned() else {
        eprintln!("unknown query `{id}`");
        std::process::exit(2);
    };
    let (reports, events, cumulative) = w.run_iolap_traced(&q, scale.config());

    if smoke {
        let golden_path = iolap_analyze::repo_root().join("scripts/trace-schema.golden");
        let normalized = export_chrome(&events, true);
        if std::env::var("IOLAP_UPDATE_GOLDEN").as_deref() == Ok("1") {
            if let Err(e) = std::fs::write(&golden_path, &normalized) {
                eprintln!("failed to write {}: {e}", golden_path.display());
                return 1;
            }
            println!(
                "updated {} ({} events, {} bytes)",
                golden_path.display(),
                events.len(),
                normalized.len()
            );
            return 0;
        }
        match std::fs::read_to_string(&golden_path) {
            Ok(golden) if golden == normalized => {
                println!(
                    "chrome-trace schema check OK ({} events, {} bytes, byte-identical)",
                    events.len(),
                    normalized.len()
                );
                0
            }
            Ok(_) => {
                eprintln!(
                    "chrome-trace export drifted from {} — if the schema change is \
                     intentional, regenerate with IOLAP_UPDATE_GOLDEN=1",
                    golden_path.display()
                );
                1
            }
            Err(e) => {
                eprintln!("cannot read {}: {e}", golden_path.display());
                1
            }
        }
    } else {
        println!(
            "{:>6} {:>10} {:>6}  top self-time (ms)",
            "batch", "ms", "marks"
        );
        for r in &reports {
            let mut st = r.self_time_ns.clone();
            st.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            let marks = events
                .iter()
                .filter(|e| e.batch == r.batch && e.kind == EventKind::Mark)
                .count();
            let top: Vec<String> = st
                .iter()
                .take(4)
                .map(|(n, ns)| format!("{n} {:.2}", *ns as f64 / 1e6))
                .collect();
            println!(
                "{:>6} {:>10} {:>6}  {}",
                r.batch,
                ms(r.elapsed),
                marks,
                top.join(" | ")
            );
        }
        let mut totals: std::collections::BTreeMap<&str, u64> = Default::default();
        for r in &reports {
            for (n, ns) in &r.self_time_ns {
                *totals.entry(n).or_default() += ns;
            }
        }
        let mut totals: Vec<_> = totals.into_iter().collect();
        totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let grand: u64 = totals.iter().map(|x| x.1).sum();
        println!("\n{:<24} {:>12} {:>7}", "span", "self(ms)", "share");
        for (n, ns) in totals.iter().take(10) {
            println!(
                "{:<24} {:>12.2} {:>6.1}%",
                n,
                *ns as f64 / 1e6,
                100.0 * *ns as f64 / grand.max(1) as f64
            );
        }
        println!(
            "\n{:<24} {:>8} {:>10} {:>10} {:>10}",
            "metric", "samples", "p50(ms)", "p95(ms)", "p99(ms)"
        );
        for (name, h) in cumulative.histograms() {
            let q = |p: f64| h.quantile(p).unwrap_or(0) as f64 / 1e6;
            println!(
                "{:<24} {:>8} {:>10.3} {:>10.3} {:>10.3}",
                name,
                h.count(),
                q(0.5),
                q(0.95),
                q(0.99)
            );
        }
        for (path, body) in [
            (format!("TRACE_{id}.jsonl"), export_jsonl(&events, false)),
            (
                format!("TRACE_{id}.trace.json"),
                export_chrome(&events, false),
            ),
        ] {
            match iolap_store::write_artifact(std::path::Path::new(&path), body.as_bytes()) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
        0
    }
}

/// `verify-plans`: rewrite every built-in query (TPC-H subset + Conviva)
/// and run the static plan verifier over the rewritten operator tree.
/// Returns the number of violations found (expected: 0).
fn verify_plans(scale: &ExpScale) -> usize {
    section("verify-plans: static §4.1 plan verification, all built-in queries");
    let mut diags = Vec::new();
    let mut failures = 0usize;
    for w in [tpch_workload(scale), conviva_workload(scale)] {
        for q in &w.queries {
            let pq = w.plan(q);
            match iolap_analyze::verify_planned(&pq, q.stream_table) {
                Ok(d) if d.is_empty() => println!("{:<8} {:<5} OK", w.name, q.id),
                Ok(d) => {
                    for diag in &d {
                        println!("{:<8} {:<5} {diag}", w.name, q.id);
                    }
                    diags.extend(d);
                }
                Err(e) => {
                    println!("{:<8} {:<5} rewrite error: {e}", w.name, q.id);
                    failures += 1;
                }
            }
        }
    }
    println!(
        "per-rule counts: {}",
        iolap_analyze::rule_counts(&diags)
            .iter()
            .map(|(r, n)| format!("{}={n}", r.id()))
            .collect::<Vec<_>>()
            .join(" ")
    );
    diags.len() + failures
}

/// `analyze`: the full static-analysis sweep — source lints (allowlist-
/// subtracted, staleness-gated) plus the exhaustive plan-space model
/// checker. Prints per-rule counts, every surviving finding, and the
/// model-checker cell accounting; the returned record's `violations()`
/// feeds the harness exit code (0 clean / 1 findings); I/O errors exit 2
/// at the call site.
fn analyze_cmd(smoke: bool) -> std::io::Result<iolap_bench::AnalysisRecord> {
    section(&format!(
        "analyze: static-analysis sweep ({})",
        if smoke { "smoke" } else { "full" }
    ));
    let rec = run_analysis(smoke)?;

    for f in &rec.lint_violations {
        println!("{} {}:{} {}", f.rule.id(), f.file, f.line, f.text);
    }
    println!(
        "lints: {} violation(s), {} allowlisted ({})",
        rec.lint_violations.len(),
        rec.lint_allowlisted,
        iolap_analyze::lint_counts(&rec.lint_violations)
            .iter()
            .map(|(r, n)| format!("{}={n}", r.id()))
            .collect::<Vec<_>>()
            .join(" ")
    );

    let m = &rec.model;
    println!(
        "model checker: depth {} — {} cells, {} accepted, {} agreed-rejected, {} probes",
        m.depth, m.cells, m.accepted, m.agreed_rejected, m.probes
    );
    for (label, cells) in [
        ("UNSOUND-ACCEPTED", &m.unsound_accepted),
        ("ACCEPTED-FLAGGED", &m.accepted_flagged),
        ("MISSED-MUTATION", &m.missed_mutations),
    ] {
        for c in cells.iter() {
            println!("{label} {}", c.to_json());
        }
    }
    // Sound-rejected cells are conservatism, not unsoundness: report them
    // for the record without failing the gate.
    println!(
        "soundness: {} unsound-accepted, {} flagged, {} missed mutations, {} sound-rejected (tolerated)",
        m.unsound_accepted.len(),
        m.accepted_flagged.len(),
        m.missed_mutations.len(),
        m.sound_rejected.len()
    );
    println!("analysis wall time: {:.0} ms", rec.wall_ms);
    Ok(rec)
}

/// Table 1: batch sizes for the streamed relations.
fn table1(scale: &ExpScale) {
    section("Table 1: mini-batch sizes for streamed relations");
    println!(
        "{:<22} {:>14} {:>18}",
        "workload (relation)", "total rows", "rows per batch"
    );
    let t = tpch_workload(scale);
    for rel in ["lineorder", "partsupp", "customer"] {
        let n = t.catalog.get(rel).unwrap().len();
        println!(
            "{:<22} {:>14} {:>18}",
            format!("TPC-H ({rel})"),
            n,
            n.div_ceil(scale.batches)
        );
    }
    let c = conviva_workload(scale);
    let n = c.catalog.get("sessions").unwrap().len();
    println!(
        "{:<22} {:>14} {:>18}",
        "Conviva (sessions)",
        n,
        n.div_ceil(scale.batches)
    );
}

/// Fig 7(a): relative standard deviation vs cumulative time for Conviva C8,
/// with the batch baseline latency as the reference bar.
fn fig7a(scale: &ExpScale) {
    section("Fig 7(a): relative stddev vs time, Conviva C8");
    let w = conviva_workload(scale);
    let q = w.queries.iter().find(|q| q.id == "C8").unwrap().clone();
    let baseline = w.run_baseline(&q);
    let reports = w.run_iolap(&q, scale.config());
    println!("baseline latency: {} ms", ms(baseline.elapsed));
    println!(
        "{:>6} {:>12} {:>12} {:>22}",
        "batch", "time(ms)", "frac(%)", "relative stddev (%)"
    );
    let mut acc = std::time::Duration::ZERO;
    for r in &reports {
        acc += r.elapsed;
        let rsd = r.result.max_relative_std().unwrap_or(f64::NAN);
        println!(
            "{:>6} {:>12} {:>12.1} {:>22.3}",
            r.batch,
            ms(acc),
            r.fraction * 100.0,
            rsd * 100.0
        );
    }
    let first_answer = reports[0].elapsed;
    println!(
        "first approximate answer after {} ms = {:.1}% of baseline latency",
        ms(first_answer),
        100.0 * ratio(first_answer, baseline.elapsed)
    );
}

/// Fig 7(b)/(c): per-query latency — baseline vs iOLAP full / @5% / @10%.
fn fig7bc(scale: &ExpScale, tpch: bool) {
    let w = if tpch {
        section("Fig 7(b): query latencies, TPC-H");
        tpch_workload(scale)
    } else {
        section("Fig 7(c): query latencies, Conviva");
        conviva_workload(scale)
    };
    println!(
        "{:<6} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "query", "baseline", "iOLAP", "ratio", "iOLAP@5%", "iOLAP@10%"
    );
    for q in &w.queries {
        let baseline = w.run_baseline(q);
        let reports = w.run_iolap(q, scale.config());
        let total = total_latency(&reports);
        println!(
            "{:<6} {:>10}ms {:>10}ms {:>7.1}x {:>10}ms {:>10}ms",
            q.id,
            ms(baseline.elapsed),
            ms(total),
            ratio(total, baseline.elapsed),
            ms(latency_at_fraction(&reports, 0.05)),
            ms(latency_at_fraction(&reports, 0.10)),
        );
    }
}

/// Fig 8(a–d): per-batch latency ratio HDA / iOLAP.
fn fig8_ratio(scale: &ExpScale, tpch: bool) {
    let w = if tpch {
        section("Fig 8(a,b): HDA/iOLAP per-batch latency ratio, TPC-H");
        tpch_workload(scale)
    } else {
        section("Fig 8(c,d): HDA/iOLAP per-batch latency ratio, Conviva");
        conviva_workload(scale)
    };
    for q in &w.queries {
        let iolap = w.run_iolap(q, scale.config());
        let hda = w.run_hda(q, scale.config());
        let ratios: Vec<String> = iolap
            .iter()
            .zip(hda.iter())
            .map(|(a, b)| format!("{:.2}", ratio(b.elapsed, a.elapsed)))
            .collect();
        println!(
            "{:<5} {:<6} batches 1..{}: [{}]",
            q.id,
            if q.nested { "nested" } else { "flat" },
            ratios.len(),
            ratios.join(", ")
        );
    }
}

/// Fig 8(e)/(f): tuples recomputed per batch by iOLAP, nested queries.
fn fig8_recomputed(scale: &ExpScale) {
    section("Fig 8(e): iOLAP tuples recomputed per batch, TPC-H nested");
    let t = tpch_workload(scale);
    for q in t.queries.iter().filter(|q| q.nested) {
        let reports = t.run_iolap(q, scale.config());
        let counts: Vec<String> = reports
            .iter()
            .map(|r| r.stats.recomputed_tuples.to_string())
            .collect();
        println!("{:<5} [{}]", q.id, counts.join(", "));
    }
    section("Fig 8(f): iOLAP tuples recomputed per batch, Conviva nested");
    let c = conviva_workload(scale);
    for q in c.queries.iter().filter(|q| q.nested) {
        let reports = c.run_iolap(q, scale.config());
        let counts: Vec<String> = reports
            .iter()
            .map(|r| r.stats.recomputed_tuples.to_string())
            .collect();
        println!("{:<5} [{}]", q.id, counts.join(", "));
    }
}

/// Fig 9(a): optimization breakdown on Conviva C2 — per-batch latency for
/// HDA vs OPT1-only vs OPT1+OPT2 (= iOLAP).
fn fig9a(scale: &ExpScale) {
    section("Fig 9(a): optimization breakdown, Conviva C2 (per-batch ms)");
    let w = conviva_workload(scale);
    let q = w.queries.iter().find(|q| q.id == "C2").unwrap().clone();
    let full = w.run_iolap(&q, scale.config());
    let opt1_only = w.run_iolap(&q, scale.config().optimizations(true, false));
    let hda = w.run_hda(&q, scale.config());
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "batch", "HDA", "OPT1", "OPT1+OPT2"
    );
    for i in 0..full.len() {
        println!(
            "{:>6} {:>14} {:>14} {:>14}",
            i,
            ms(hda[i].elapsed),
            ms(opt1_only[i].elapsed),
            ms(full[i].elapsed)
        );
    }
    let t = |r: &[iolap_core::BatchReport]| total_latency(r);
    println!(
        "totals: HDA {} ms | OPT1 {} ms ({:.0}% of HDA) | OPT1+OPT2 {} ms ({:.0}% of HDA)",
        ms(t(&hda)),
        ms(t(&opt1_only)),
        100.0 * ratio(t(&opt1_only), t(&hda)),
        ms(t(&full)),
        100.0 * ratio(t(&full), t(&hda)),
    );
}

/// Fig 9(b)/(c) and 10(c)/(d): state sizes and data shipped.
fn fig9bc(scale: &ExpScale, tpch: bool) {
    let w = if tpch {
        section("Fig 9(b): operator state sizes, TPC-H");
        tpch_workload(scale)
    } else {
        section("Fig 10(c): operator state sizes, Conviva");
        conviva_workload(scale)
    };
    println!(
        "{:<6} {:>16} {:>18} {:>18}",
        "query", "join state(KB)", "other state(KB)", "baseline data(KB)"
    );
    let mut shipped_rows = Vec::new();
    for q in &w.queries {
        let reports = w.run_iolap(q, scale.config());
        let max_join = reports
            .iter()
            .map(|r| r.state_bytes_join)
            .max()
            .unwrap_or(0);
        let max_other = reports
            .iter()
            .map(|r| r.state_bytes_other)
            .max()
            .unwrap_or(0);
        let baseline_bytes = w.catalog.get(q.stream_table).unwrap().approx_bytes();
        println!(
            "{:<6} {:>16.1} {:>18.1} {:>18.1}",
            q.id,
            max_join as f64 / 1024.0,
            max_other as f64 / 1024.0,
            baseline_bytes as f64 / 1024.0
        );
        let total_shipped: usize = reports.iter().map(|r| r.stats.shipped_bytes).sum();
        let per_batch = total_shipped / reports.len().max(1);
        shipped_rows.push((q.id, total_shipped, per_batch, baseline_bytes));
    }
    if tpch {
        section("Fig 9(c): data shipped at query time, TPC-H");
    } else {
        section("Fig 10(d): data shipped at query time, Conviva");
    }
    println!(
        "{:<6} {:>18} {:>20} {:>18}",
        "query", "iOLAP total(KB)", "iOLAP per-batch(KB)", "baseline(KB)"
    );
    for (id, total, per_batch, base) in shipped_rows {
        println!(
            "{:<6} {:>18.1} {:>20.1} {:>18.1}",
            id,
            total as f64 / 1024.0,
            per_batch as f64 / 1024.0,
            base as f64 / 1024.0
        );
    }
}

/// Fig 9(d)/(e) and 10(e)/(f): slack parameter vs failure-recovery
/// probability and vs non-deterministic-set size.
fn fig9de(scale: &ExpScale, tpch: bool) {
    let (w, ids): (Workload, Vec<&str>) = if tpch {
        section("Fig 10(e,f): slack sweeps, TPC-H nested queries");
        (
            tpch_workload(scale),
            vec!["Q11", "Q17", "Q18", "Q20", "Q22"],
        )
    } else {
        section("Fig 9(d,e): slack sweeps, Conviva nested queries");
        (
            conviva_workload(scale),
            vec!["C1", "C2", "C4", "C6", "C7", "C8", "C9", "C10"],
        )
    };
    let slacks = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5];
    println!(
        "{:<6} {}",
        "query",
        slacks
            .iter()
            .map(|s| format!("{:>24}", format!("slack={s}")))
            .collect::<String>()
    );
    println!("{:<6}    (P(failure) % | avg recomputed/batch)", "");
    for id in ids {
        let q = w.queries.iter().find(|q| q.id == id).unwrap().clone();
        let mut cells = Vec::new();
        for s in slacks {
            let cfg = IolapConfig {
                slack: s,
                ..scale.config()
            };
            let reports = w.run_iolap(&q, cfg);
            let failures = reports.iter().filter(|r| r.recovered).count();
            let p_fail = failures as f64 / reports.len() as f64 * 100.0;
            let avg_recomputed: f64 = reports
                .iter()
                .map(|r| r.stats.recomputed_tuples as f64)
                .sum::<f64>()
                / reports.len() as f64;
            cells.push(format!("{:>11.0}% | {:>8.0}", p_fail, avg_recomputed));
        }
        println!("{:<6} {}", q.id, cells.join(" "));
    }
}

/// Fig 9(f)/(g): batch size vs per-batch latency and vs total latency.
fn fig9fg(scale: &ExpScale) {
    section("Fig 9(f,g): batch size sweeps, Conviva");
    let w = conviva_workload(scale);
    let batch_counts = [30, 24, 20, 16, 12]; // increasing batch *size*
    let total_rows = w.catalog.get("sessions").unwrap().len();
    println!(
        "{:<6} {}",
        "query",
        batch_counts
            .iter()
            .map(|b| format!("{:>26}", format!("~{} rows/batch", total_rows / b)))
            .collect::<String>()
    );
    println!("{:<6}    (avg batch ms | total ms)", "");
    for q in &w.queries {
        let mut cells = Vec::new();
        for b in batch_counts {
            let cfg = IolapConfig {
                num_batches: b,
                ..scale.config()
            };
            let reports = w.run_iolap(q, cfg);
            let total = total_latency(&reports);
            let avg = total / reports.len() as u32;
            cells.push(format!("{:>11} | {:>10}", ms(avg), ms(total)));
        }
        println!("{:<6} {}", q.id, cells.join(" "));
    }
}

/// Fig 10(a)/(b): iOLAP vs HDA latencies at full / 5% / 10% data.
fn fig10ab(scale: &ExpScale) {
    for (tpch, label) in [(true, "Fig 10(a): TPC-H"), (false, "Fig 10(b): Conviva")] {
        section(&format!("{label}: iOLAP vs HDA latencies"));
        let w = if tpch {
            tpch_workload(scale)
        } else {
            conviva_workload(scale)
        };
        println!(
            "{:<6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "query", "iOLAP", "iOLAP@5%", "iOLAP@10%", "HDA", "HDA@5%", "HDA@10%"
        );
        for q in &w.queries {
            let iolap = w.run_iolap(q, scale.config());
            let hda = w.run_hda(q, scale.config());
            println!(
                "{:<6} {:>10}ms {:>10}ms {:>10}ms {:>10}ms {:>10}ms {:>10}ms",
                q.id,
                ms(total_latency(&iolap)),
                ms(latency_at_fraction(&iolap, 0.05)),
                ms(latency_at_fraction(&iolap, 0.10)),
                ms(total_latency(&hda)),
                ms(latency_at_fraction(&hda, 0.05)),
                ms(latency_at_fraction(&hda, 0.10)),
            );
        }
    }
}

/// Extension (not in the paper): bootstrap trial-count sweep. More trials
/// buy smoother error estimates and tighter variation ranges at a
/// CPU-proportional cost — the knob behind the "known deviations" note in
/// EXPERIMENTS.md.
fn trials_sweep(scale: &ExpScale) {
    section("Extension: bootstrap trial-count sweep, Conviva SBI");
    let w = conviva_workload(scale);
    let q = w.queries.iter().find(|q| q.id == "SBI").unwrap().clone();
    println!(
        "{:>8} {:>14} {:>22} {:>18}",
        "trials", "total (ms)", "first-batch rsd (%)", "final recomputed"
    );
    for trials in [10usize, 25, 50, 100, 200] {
        let cfg = IolapConfig {
            trials,
            ..scale.config()
        };
        let reports = w.run_iolap(&q, cfg);
        let rsd = reports[0]
            .result
            .max_relative_std()
            .map(|x| x * 100.0)
            .unwrap_or(f64::NAN);
        println!(
            "{:>8} {:>14} {:>22.3} {:>18}",
            trials,
            ms(total_latency(&reports)),
            rsd,
            reports.last().unwrap().stats.recomputed_tuples
        );
    }
}

/// Extension (not in the paper): per-operator metrics breakdown for one
/// representative nested query per workload, summed over all batches —
/// where each query's time and traffic actually go. Runs with the journal
/// armed so the rollup line reports *exclusive* span self-time from the
/// trace tree (the deprecated `total_span_ns` double-counted nested spans).
fn metrics_breakdown(scale: &ExpScale) {
    for (w, id) in [
        (tpch_workload(scale), "Q11"),
        (conviva_workload(scale), "SBI"),
    ] {
        section(&format!(
            "Per-operator metrics, {} {id} (all batches)",
            w.name
        ));
        let q = w.queries.iter().find(|q| q.id == id).unwrap().clone();
        let (reports, _events, cumulative) = w.run_iolap_traced(&q, scale.config());
        print!("{cumulative}");
        let recovered = reports.iter().filter(|r| r.recovered).count();
        let self_time_ns: u64 = reports
            .iter()
            .flat_map(|r| r.self_time_ns.iter())
            .map(|(_, ns)| ns)
            .sum();
        println!(
            "batches: {} | recoveries: {} | traced self-time total: {:.2} ms",
            reports.len(),
            recovered,
            self_time_ns as f64 / 1e6
        );
    }
}

/// `kernels`: micro-benchmark + exactness check of the columnar kernels
/// against their row-at-a-time references (not part of `all`). Each kernel
/// must produce results bit-identical to the scalar reference — any
/// mismatch is a violation that fails the harness. `--smoke` shrinks the
/// row count for the offline gate. Timings are informative (the acceptance
/// numbers live in the per-operator `_ns` metrics of the BENCH record).
fn kernels_cmd(scale: &ExpScale, smoke: bool) -> usize {
    use iolap_bootstrap::poisson::{block_trial_weights, trial_weights};
    use iolap_engine::{CmpOp, EvalContext, Expr};
    use iolap_relation::kernels::filter::{filter_cmp_value, CmpKind};
    use iolap_relation::kernels::fold::{fold_sum_weighted, gather_numeric};
    use iolap_relation::{Column, SelVec, Value};
    use std::time::Instant;

    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn report(name: &str, rows: usize, t_ref: std::time::Duration, t_vec: std::time::Duration) {
        let rns = t_ref.as_nanos() as f64 / rows as f64;
        let vns = t_vec.as_nanos() as f64 / rows as f64;
        let speedup = if vns > 0.0 { rns / vns } else { f64::INFINITY };
        println!(
            "{name:<18} {rows:>8} rows | ref {rns:>8.1} ns/row | vec {vns:>8.1} ns/row | {speedup:>5.2}x"
        );
    }

    section(&format!(
        "kernels: columnar kernels vs row-at-a-time reference ({})",
        if smoke { "smoke" } else { "full" }
    ));
    let n: usize = if smoke { 20_000 } else { 200_000 };
    let trials = scale.trials;
    let mut violations = 0usize;

    // Deterministic synthetic columns: floats with NULL holes, a
    // low-cardinality dictionary string column.
    let cdns = ["cdn0", "cdn1", "cdn2", "cdn3"];
    let floats: Vec<Value> = (0..n)
        .map(|i| {
            let r = mix(scale.seed ^ i as u64);
            if r.is_multiple_of(23) {
                Value::Null
            } else {
                Value::Float((r % 10_000) as f64 / 10_000.0)
            }
        })
        .collect();
    let strs: Vec<Value> = (0..n)
        .map(|i| Value::str(cdns[(mix(i as u64) % 4) as usize]))
        .collect();

    // --- comparison kernels (the SELECT hot path). The reference is the
    // operator's replaced code path — `Expr::eval_predicate` per row — and
    // the vectorized timing includes column construction, as the operator
    // pays it per batch.
    for (name, cells, kind, lit) in [
        ("filter f64 >", &floats, CmpKind::Gt, Value::Float(0.5)),
        ("filter str =", &strs, CmpKind::Eq, Value::str("cdn3")),
    ] {
        let op = match kind {
            CmpKind::Gt => CmpOp::Gt,
            _ => CmpOp::Eq,
        };
        let rows: Vec<iolap_relation::Row> = cells
            .iter()
            .map(|v| iolap_relation::Row::new(vec![v.clone()]))
            .collect();
        let pred = Expr::Cmp {
            op,
            left: Box::new(Expr::Col(0)),
            right: Box::new(Expr::Lit(lit.clone())),
        };
        let t0 = Instant::now();
        let mut ref_sel: Vec<usize> = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            if pred
                .eval_predicate(row, &EvalContext::batch())
                .unwrap_or(false)
            {
                ref_sel.push(i);
            }
        }
        let t_ref = t0.elapsed();
        let t0 = Instant::now();
        let (col, saw_lineage) = Column::from_cells(cells.iter());
        let mut sel = SelVec::with_capacity(n);
        let ok = !saw_lineage && filter_cmp_value(&col, kind, &lit, &mut sel);
        let t_vec = t0.elapsed();
        if !ok || sel.iter().collect::<Vec<_>>() != ref_sel {
            eprintln!("kernels: {name} diverged from the row-at-a-time reference");
            violations += 1;
        }
        report(name, n, t_ref, t_vec);
    }

    // --- aggregate trial fold (the AGGREGATE hot path): weighted SUM
    // across all bootstrap trials, gather + fold vs scalar reference.
    let ws: Vec<Vec<f64>> = (0..n)
        .map(|i| trial_weights(scale.seed, i as u64, trials))
        .collect();
    let mults: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
    let frows: Vec<iolap_relation::Row> = floats
        .iter()
        .map(|v| iolap_relation::Row::new(vec![v.clone()]))
        .collect();
    let arg = Expr::Col(0);
    let t0 = Instant::now();
    let mut ra = vec![0.0; trials];
    let mut rb = vec![0.0; trials];
    for (i, row) in frows.iter().enumerate() {
        // The row path evaluates the argument expression per row (clone +
        // dispatch) before the trial fold.
        let v = arg.eval(row, &EvalContext::batch()).unwrap_or(Value::Null);
        let x = v.as_f64();
        if v.is_null() || x.is_none() {
            continue;
        }
        let x = x.unwrap_or(0.0);
        let m = mults[i];
        for ((ta, tb), w) in ra.iter_mut().zip(rb.iter_mut()).zip(ws[i].iter()) {
            *ta += m * w * x;
            *tb += m * w;
        }
    }
    let t_ref = t0.elapsed();
    let t0 = Instant::now();
    let mut xs = Vec::new();
    let mut sel = SelVec::with_capacity(n);
    let ok = gather_numeric(floats.iter(), false, &mut xs, &mut sel);
    let mut va = vec![0.0; trials];
    let mut vb = vec![0.0; trials];
    for (k, i) in sel.iter().enumerate() {
        fold_sum_weighted(&mut va, &mut vb, xs[k], mults[i], &ws[i]);
    }
    let t_vec = t0.elapsed();
    let bits_equal = |a: &[f64], b: &[f64]| {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    };
    if !ok || !bits_equal(&va, &ra) || !bits_equal(&vb, &rb) {
        eprintln!("kernels: fold sum(weighted) diverged from the row-at-a-time reference");
        violations += 1;
    }
    report("fold sum(w)", n, t_ref, t_vec);

    // --- Poisson block draw (the SCAN hot path): whole-delta block vs
    // per-row vectors. One untimed warmup of each shape first, so neither
    // side pays the allocator's first-touch page faults inside the timer.
    let n2 = n / 10;
    drop(block_trial_weights(scale.seed, 0, n2, trials));
    drop(trial_weights(scale.seed, 0, trials));
    let t0 = Instant::now();
    let per_row: Vec<Vec<f64>> = (0..n2)
        .map(|i| trial_weights(scale.seed, i as u64, trials))
        .collect();
    let t_ref = t0.elapsed();
    let t0 = Instant::now();
    let block = block_trial_weights(scale.seed, 0, n2, trials);
    let t_vec = t0.elapsed();
    let block_ok = trials == 0
        || (block.len() == n2 * trials
            && block
                .chunks_exact(trials)
                .zip(per_row.iter())
                .all(|(c, r)| bits_equal(c, r)));
    if !block_ok {
        eprintln!("kernels: Poisson block draw diverged from per-row trial_weights");
        violations += 1;
    }
    report("poisson block", n2, t_ref, t_vec);

    if violations == 0 {
        println!("kernels: all vectorized results bit-identical to references");
    }
    violations
}

// Silence the unused-import lint for BatchedRelation which documents the
// partitioning used by the drivers.
#[allow(unused)]
fn _partitioning_doc(_b: &BatchedRelation) {}
