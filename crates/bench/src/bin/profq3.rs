use std::time::Instant;
fn main() {
    let cat = iolap_workloads::tpch_catalog(4.0, 2016);
    let reg = iolap_engine::FunctionRegistry::with_builtins();
    let q = iolap_workloads::tpch_query("Q3").unwrap();
    for (label, trials, ckpt) in [
        ("t=100", 100usize, 1usize),
        ("t=0", 0, 1),
        ("t=100,ckpt=99", 100, 99),
    ] {
        let mut cfg = iolap_core::IolapConfig::with_batches(20)
            .trials(trials)
            .seed(2016);
        cfg.checkpoint_interval = ckpt;
        let t0 = Instant::now();
        let mut d =
            iolap_core::IolapDriver::from_sql(q.sql, &cat, &reg, q.stream_table, cfg).unwrap();
        d.run_to_completion().unwrap();
        eprintln!("Q3 {label}: {:?}", t0.elapsed());
    }
}
