//! `experiments analyze`: one entry point that runs the whole static-
//! analysis engine — the token-based source lints (with allowlist
//! subtraction and the L010 staleness gate) and the exhaustive plan-space
//! model checker — and returns a machine-readable record for the console
//! report and the `"analysis"` section of the `--json` document.

use iolap_analyze::modelcheck::{self, ModelCheckReport};
use iolap_analyze::{Allowlist, LintFinding};
use std::time::Instant;

/// Outcome of one `experiments analyze` run.
pub struct AnalysisRecord {
    /// Whether the model checker ran at smoke depth
    /// ([`modelcheck::SMOKE_DEPTH`]) or full depth
    /// ([`modelcheck::FULL_DEPTH`]).
    pub smoke: bool,
    /// Lint findings that survive the allowlist, plus any L010 staleness
    /// findings for allowlist entries that no longer match anything.
    /// Deterministically ordered (file, line, rule).
    pub lint_violations: Vec<LintFinding>,
    /// Findings absorbed by `scripts/lint-allow.txt` (audited exceptions).
    pub lint_allowlisted: usize,
    /// Plan-space model-checker outcome.
    pub model: ModelCheckReport,
    /// Wall-clock time of the whole sweep in milliseconds.
    pub wall_ms: f64,
}

impl AnalysisRecord {
    /// Total gate-failing violations: surviving lint findings (L010
    /// staleness included) plus model-checker soundness violations
    /// (unsound-accepted, accepted-but-flagged, missed mutations).
    pub fn violations(&self) -> usize {
        self.lint_violations.len() + self.model.violations()
    }
}

/// Run the full static-analysis sweep over the repo sources and the
/// bounded plan space. Errors only on I/O (unreadable allowlist or source
/// tree) — analysis findings are data, not errors.
pub fn run_analysis(smoke: bool) -> std::io::Result<AnalysisRecord> {
    let start = Instant::now();
    let root = iolap_analyze::repo_root();
    let allow = Allowlist::load(&root.join("scripts/lint-allow.txt"))?;
    let findings = iolap_analyze::lint_tree(&root)?;
    let lint_allowlisted = findings.iter().filter(|f| allow.allows(f)).count();
    let stale = allow.stale_entries(&findings);
    let mut lint_violations: Vec<LintFinding> =
        findings.into_iter().filter(|f| !allow.allows(f)).collect();
    lint_violations.extend(stale);
    iolap_analyze::sort_findings(&mut lint_violations);

    let depth = if smoke {
        modelcheck::SMOKE_DEPTH
    } else {
        modelcheck::FULL_DEPTH
    };
    let model = modelcheck::run(depth);
    Ok(AnalysisRecord {
        smoke,
        lint_violations,
        lint_allowlisted,
        model,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}
