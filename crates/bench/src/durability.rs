//! Durable-store experiments: the sweep behind `experiments durability`.
//!
//! The durability tentpole makes three claims, and the sweep checks each
//! the way the shard/observe sweeps check theirs — by byte comparison of
//! canonical exports, never by trusting the implementation:
//!
//! * **crash-point matrix**: for every batch boundary `m` of every swept
//!   query, a durable server is killed (dropped without a clean finish)
//!   with `m` batches stepped and `m-1` reports delivered, restarted over
//!   the same log directory, and recovered. The resumed report stream
//!   must be byte-identical (modulo the masked wall clock) to an
//!   uninterrupted run — the §5.1 recovery loop re-derives progress, it
//!   never re-estimates it.
//! * **streaming appends**: a mid-run `append` grows the stream by one
//!   mini-batch; the server's grown stream must byte-match a driver-level
//!   run appending the same rows at the same position, and the final
//!   batch's fraction returns to 1.0 (Theorem-1 agreement now covers the
//!   appended rows).
//! * **fsync overhead**: the same session timed with `fsync` off vs on
//!   (min of three runs each), recorded against the stated 25 % budget.
//!   Like the telemetry overhead, it is recorded rather than asserted —
//!   single-run smoke-scale timing would make a hard gate flaky. The
//!   correctness claims above *are* asserted: any non-identical matrix
//!   cell, inexact append cell, or stale digest is a violation.
//!
//! The record lands in the BENCH JSON's `"durability"` section (schema
//! v7).

use crate::{conviva_workload, ExpScale};
use iolap_server::tcp::{handle_request, SubmitFactory};
use iolap_server::wire::{parse, JVal};
use iolap_server::{Server, ServerConfig, SessionHandle};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rows appended by the streaming-append cells (conviva `sessions`
/// schema). Two rows with distinctive values so a dropped or duplicated
/// append shows up in the aggregates, not just the row counts.
const APPEND_ROWS: &str = r#"[[990001,1,"cdn-append","SFO","US","isp-a","vod",12.5,3.5,1.25,2400,0],[990002,2,"cdn-append","LAX","US","isp-b","live",2.5,7.25,0.5,3200,1]]"#;

/// The full `experiments durability` record (`"durability"` JSON section).
#[derive(Clone, Debug)]
pub struct DurabilityRecord {
    /// Whether this was the pinned smoke configuration.
    pub smoke: bool,
    /// Query ids swept.
    pub queries: Vec<&'static str>,
    /// Mini-batches per session (the matrix has `batches - 1` kill cells
    /// per query, plus the completed-session cell).
    pub batches: usize,
    /// Crash-point cells run (kill + restart + recover + resume).
    pub matrix_cells: usize,
    /// Cells whose resumed stream byte-matched the uninterrupted run.
    pub matrix_identical: usize,
    /// Streaming-append cells run.
    pub append_cells: usize,
    /// Append cells whose grown stream byte-matched the driver oracle.
    pub append_exact: usize,
    /// Batches re-run by recovery replay across all cells.
    pub replayed_batches: usize,
    /// Appends re-applied at their logged positions across all cells.
    pub reapplied_appends: usize,
    /// Checkpoint digests that failed verification during replay (any
    /// nonzero count is a violation: nothing in the sweep damages logs).
    pub stale_digests: usize,
    /// Uninterrupted durable session wall-clock, fsync off (min of 3, ms).
    pub fsync_off_ms: f64,
    /// The same session with fsync on every frame (min of 3, ms).
    pub fsync_on_ms: f64,
}

impl DurabilityRecord {
    /// fsync overhead in percent of the fsync-off wall-clock.
    pub fn fsync_overhead_pct(&self) -> f64 {
        if self.fsync_off_ms > 0.0 {
            100.0 * (self.fsync_on_ms / self.fsync_off_ms - 1.0)
        } else {
            0.0
        }
    }

    /// Correctness violations (fsync overhead is recorded, not asserted).
    pub fn violations(&self) -> usize {
        (self.matrix_cells - self.matrix_identical)
            + (self.append_cells - self.append_exact)
            + self.stale_digests
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SCRATCH: AtomicUsize = AtomicUsize::new(0);
    let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("iolap-durability-{}-{n}-{tag}", std::process::id()))
}

/// Factory over a fresh workload at `scale`: recovery re-derives drivers
/// from origin requests, so the factory being a pure function of the
/// request is the recovery contract the sweep leans on.
fn make_factory(scale: &ExpScale) -> SubmitFactory {
    let w = conviva_workload(scale);
    let cfg = scale.config();
    Arc::new(move |req: &JVal| {
        let id = req
            .get("query")
            .and_then(JVal::as_str)
            .ok_or_else(|| "missing query".to_string())?;
        let q = w
            .queries
            .iter()
            .find(|q| q.id == id)
            .ok_or_else(|| format!("unknown query {id}"))?
            .clone();
        let pq = w.plan(&q);
        let driver =
            iolap_core::IolapDriver::from_plan(&pq, &w.catalog, q.stream_table, cfg.clone())
                .map_err(|e| e.to_string())?;
        Ok((driver, iolap_server::tcp::spec_from_request(req)))
    })
}

/// `workers=1, report_buffer=1` parks the lone worker after each batch,
/// making "killed at batch boundary m" a deterministic machine state.
fn server_cfg(dir: &Path, fsync: bool) -> ServerConfig {
    ServerConfig::with_workers(1)
        .report_buffer(1)
        .durable(dir.to_path_buf())
        .durable_fsync(fsync)
}

/// Re-render a report line with `elapsed_ms` pinned to 0 so streams from
/// different runs compare bytewise.
fn masked(r: &JVal) -> String {
    let mut pinned = r.clone();
    if let JVal::Obj(members) = &mut pinned {
        for (k, v) in members.iter_mut() {
            if k == "elapsed_ms" {
                *v = JVal::Num(0.0);
            }
        }
    }
    pinned.render()
}

fn submit(
    server: &Server,
    f: &SubmitFactory,
    sessions: &mut BTreeMap<u64, SessionHandle>,
    query: &str,
) -> u64 {
    let resp = handle_request(
        server,
        f,
        sessions,
        &format!(r#"{{"op":"submit","query":"{query}","label":"durability"}}"#),
    );
    let v = parse(&resp).unwrap_or_else(|e| panic!("submit response unparsable: {e}"));
    v.get("session")
        .and_then(JVal::as_u64)
        .unwrap_or_else(|| panic!("submit rejected: {resp}"))
}

/// Poll with `max:1` until one report arrives.
fn poll_one(
    server: &Server,
    f: &SubmitFactory,
    sessions: &mut BTreeMap<u64, SessionHandle>,
    id: u64,
) -> String {
    for _ in 0..4000 {
        let resp = handle_request(
            server,
            f,
            sessions,
            &format!(r#"{{"op":"poll","session":{id},"max":1}}"#),
        );
        let v = parse(&resp).unwrap_or_else(|e| panic!("poll response unparsable: {e}"));
        if let Some(JVal::Arr(rs)) = v.get("reports") {
            if let Some(r) = rs.first() {
                return masked(r);
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("durability: no report arrived for session {id}");
}

/// Drain the session to `done`, returning every masked report line.
fn poll_to_done(
    server: &Server,
    f: &SubmitFactory,
    sessions: &mut BTreeMap<u64, SessionHandle>,
    id: u64,
) -> Vec<String> {
    let mut lines = Vec::new();
    for _ in 0..8000 {
        let resp = handle_request(
            server,
            f,
            sessions,
            &format!(r#"{{"op":"poll","session":{id},"max":4}}"#),
        );
        let v = parse(&resp).unwrap_or_else(|e| panic!("poll response unparsable: {e}"));
        if let Some(JVal::Arr(rs)) = v.get("reports") {
            for r in rs {
                lines.push(masked(r));
            }
        }
        if v.get("state").and_then(JVal::as_str) == Some("done") {
            return lines;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("durability: session {id} never finished");
}

/// Block until the parked worker has buffered one report with `batches`
/// batches stepped in total — the deterministic crash point.
fn wait_for_boundary(handle: &SessionHandle, batches: usize) {
    for _ in 0..4000 {
        let s = handle.summary();
        if s.pending_reports == 1 && s.batches_run == batches {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let s = handle.summary();
    panic!(
        "durability: never reached boundary {batches} (batches_run={} pending={})",
        s.batches_run, s.pending_reports
    );
}

/// One uninterrupted durable run; returns the masked stream and wall
/// clock. `append_after` arms the streaming-append cell: the rows land
/// while the worker is parked after that batch boundary.
fn durable_run(
    f: &SubmitFactory,
    dir: &Path,
    fsync: bool,
    query: &str,
    append_after: Option<usize>,
) -> (Vec<String>, f64) {
    let server = Server::new(server_cfg(dir, fsync));
    let mut sessions = BTreeMap::new();
    let started = Instant::now();
    let id = submit(&server, f, &mut sessions, query);
    if let Some(boundary) = append_after {
        wait_for_boundary(&sessions[&id], boundary);
        let resp = handle_request(
            &server,
            f,
            &mut sessions,
            &format!(r#"{{"op":"append","table":"sessions","rows":{APPEND_ROWS}}}"#),
        );
        let v = parse(&resp).unwrap_or_else(|e| panic!("append response unparsable: {e}"));
        assert_eq!(
            v.get("sessions").and_then(JVal::as_u64),
            Some(1),
            "durability: append not delivered: {resp}"
        );
    }
    let lines = poll_to_done(&server, f, &mut sessions, id);
    (lines, started.elapsed().as_secs_f64() * 1e3)
}

/// One crash cell: kill at boundary `m`, restart, recover, resume, drain.
/// Returns `(identical, replayed, reapplied, stale)` against `baseline`.
fn crash_cell(
    f: &SubmitFactory,
    query: &str,
    m: usize,
    baseline: &[String],
) -> (bool, usize, usize, usize) {
    let dir = scratch_dir(&format!("{query}-cell{m}"));
    let mut pre = Vec::new();
    {
        let server = Server::new(server_cfg(&dir, false));
        let mut sessions = BTreeMap::new();
        let id = submit(&server, f, &mut sessions, query);
        for k in 0..m {
            wait_for_boundary(&sessions[&id], k + 1);
            if k + 1 < m {
                pre.push(poll_one(&server, f, &mut sessions, id));
            }
        }
        // The kill: drop without finish; no 'D' record reaches the log.
    }
    let server = Server::new(server_cfg(&dir, false));
    let recovered = server.recover(f);
    let resumed_one = recovered.resumed.len() == 1;
    let post = if resumed_one {
        let id = recovered.resumed[0];
        let mut sessions = BTreeMap::new();
        let resp = handle_request(
            &server,
            f,
            &mut sessions,
            &format!(r#"{{"op":"resume","session":{id}}}"#),
        );
        let ok = parse(&resp)
            .ok()
            .and_then(|v| v.get("ok").and_then(JVal::as_bool))
            == Some(true);
        if ok {
            poll_to_done(&server, f, &mut sessions, id)
        } else {
            Vec::new()
        }
    } else {
        Vec::new()
    };
    let identical = pre == baseline[..m - 1] && post == baseline;
    let _ = std::fs::remove_dir_all(&dir);
    (
        identical,
        recovered.replayed_batches,
        recovered.reapplied_appends,
        recovered.stale_digests,
    )
}

/// Driver-level oracle for the append cell: step once, append the same
/// rows at the same position, run to the end, render through the same
/// wire form the server uses.
fn append_oracle(f: &SubmitFactory, query: &str) -> Vec<String> {
    let req = parse(&format!(
        r#"{{"op":"submit","query":"{query}","label":"durability"}}"#
    ))
    .unwrap_or_else(|e| panic!("oracle request unparsable: {e}"));
    let (mut driver, _) = f(&req).unwrap_or_else(|e| panic!("oracle factory: {e}"));
    let mut reports = Vec::new();
    let first = driver
        .step()
        .unwrap_or_else(|| panic!("{query}: empty stream"))
        .unwrap_or_else(|e| panic!("{query}: {e}"));
    reports.push(first);
    let rows = parse(APPEND_ROWS).unwrap_or_else(|e| panic!("append rows unparsable: {e}"));
    let rel = iolap_server::durable::rows_to_relation(&rows, driver.stream_schema())
        .unwrap_or_else(|e| panic!("append rows rejected: {e}"));
    driver
        .append_rows(rel)
        .unwrap_or_else(|e| panic!("append_rows: {e}"));
    while let Some(step) = driver.step() {
        reports.push(step.unwrap_or_else(|e| panic!("{query}: {e}")));
    }
    reports
        .iter()
        .map(|r| {
            let line = iolap_server::tcp::report_json(r);
            let v = parse(&line).unwrap_or_else(|e| panic!("report unparsable: {e}"));
            masked(&v)
        })
        .collect()
}

/// Run the durability sweep; returns the record and its violation count.
/// `smoke` pins the scale (independent of `IOLAP_SCALE`, like `observe
/// --smoke`).
pub fn durability_sweep(scale: &ExpScale, smoke: bool) -> (DurabilityRecord, usize) {
    let scale = if smoke {
        ExpScale {
            tpch_sf: 0.1,
            conviva_rows: 600,
            batches: 6,
            trials: 16,
            seed: 2016,
        }
    } else {
        *scale
    };
    // Smoke sweeps the crash matrix over EVERY built-in Conviva query
    // (all stream `sessions`) — tiny scale keeps the gate fast. The full
    // sweep takes four representative queries to its much larger scale.
    let queries: Vec<&'static str> = if smoke {
        conviva_workload(&scale)
            .queries
            .iter()
            .map(|q| q.id)
            .collect()
    } else {
        vec!["C1", "C2", "C3", "C7"]
    };
    let f = make_factory(&scale);

    let mut rec = DurabilityRecord {
        smoke,
        queries: queries.clone(),
        batches: scale.batches,
        matrix_cells: 0,
        matrix_identical: 0,
        append_cells: 0,
        append_exact: 0,
        replayed_batches: 0,
        reapplied_appends: 0,
        stale_digests: 0,
        fsync_off_ms: 0.0,
        fsync_on_ms: 0.0,
    };

    for query in &queries {
        let dir = scratch_dir(&format!("{query}-baseline"));
        let (baseline, _) = durable_run(&f, &dir, false, query, None);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(
            baseline.len(),
            scale.batches,
            "{query}: baseline must deliver every batch"
        );

        let mut identical_cells = 0usize;
        for m in 1..scale.batches {
            let (identical, replayed, reapplied, stale) = crash_cell(&f, query, m, &baseline);
            rec.matrix_cells += 1;
            rec.replayed_batches += replayed;
            rec.reapplied_appends += reapplied;
            rec.stale_digests += stale;
            if identical {
                rec.matrix_identical += 1;
                identical_cells += 1;
            } else {
                println!("durability: VIOLATION {query} cell {m} stream diverged after restart");
            }
        }
        println!(
            "durability: {query} crash matrix {}/{} cells byte-identical",
            identical_cells,
            scale.batches - 1
        );

        // Streaming-append cell: server grown stream vs driver oracle.
        let oracle = append_oracle(&f, query);
        let dir = scratch_dir(&format!("{query}-append"));
        let (grown, _) = durable_run(&f, &dir, false, query, Some(1));
        let _ = std::fs::remove_dir_all(&dir);
        rec.append_cells += 1;
        let last_exact = grown
            .last()
            .and_then(|l| parse(l).ok())
            .and_then(|v| v.get("fraction").and_then(JVal::as_f64))
            == Some(1.0);
        if grown == oracle && grown.len() == scale.batches + 1 && last_exact {
            rec.append_exact += 1;
            println!(
                "durability: {query} append cell exact ({} batches, final fraction 1.0)",
                grown.len()
            );
        } else {
            println!(
                "durability: VIOLATION {query} append cell diverged ({} vs {} lines)",
                grown.len(),
                oracle.len()
            );
        }
    }

    // fsync overhead: the same uninterrupted session, off vs on, min of 3.
    let timing_query = *queries.last().unwrap_or(&"C3");
    for fsync in [false, true] {
        let mut best = f64::INFINITY;
        for i in 0..3 {
            let dir = scratch_dir(&format!("fsync{fsync}-{i}"));
            let (_, ms) = durable_run(&f, &dir, fsync, timing_query, None);
            let _ = std::fs::remove_dir_all(&dir);
            best = best.min(ms);
        }
        if fsync {
            rec.fsync_on_ms = best;
        } else {
            rec.fsync_off_ms = best;
        }
    }
    println!(
        "durability: fsync off {:.1} ms / on {:.1} ms ({:+.1} % vs 25 % budget, recorded)",
        rec.fsync_off_ms,
        rec.fsync_on_ms,
        rec.fsync_overhead_pct()
    );
    println!(
        "durability: {} matrix cells ({} identical), {} append cells ({} exact), {} batches replayed, {} stale digests — {} violation(s)",
        rec.matrix_cells,
        rec.matrix_identical,
        rec.append_cells,
        rec.append_exact,
        rec.replayed_batches,
        rec.stale_digests,
        rec.violations()
    );
    let violations = rec.violations();
    (rec, violations)
}
