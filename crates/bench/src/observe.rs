//! Telemetry-plane experiments: the sweep behind `experiments observe`.
//!
//! The serving layer's observability claims are all determinism claims,
//! so the sweep checks them the same way the shard sweep checks merges —
//! by byte comparison of canonical exports:
//!
//! * **exposition determinism**: a pinned 4-session fleet (two tenants, a
//!   hostile label, one session per stop-policy family) runs twice through
//!   a fresh [`Server`] each time; the canonical Prometheus-style
//!   expositions must be byte-identical (metric rollups are commutative
//!   merges, so worker interleaving must not show);
//! * **trace determinism**: the same two runs' scheduler journals, passed
//!   through [`canonical_trace`] and normalized JSONL export, must also
//!   byte-compare — per-session lifecycle order is fixed by the state
//!   lock, and grouping by session id removes the cross-session
//!   interleaving;
//! * **cross-shard trace identity**: one driver-level traced C2 run per
//!   shard count `N ∈ {0, 1, 2, 4}`; the [`canonical_events`] exports
//!   must be byte-identical — shard topology may add `shard.*` frames but
//!   must never move an application span;
//! * **overhead**: the fleet run timed with the journal off vs armed
//!   (min of three pairs after warm-up), recorded against the telemetry
//!   plane's 5 % budget;
//! * **golden**: under `--smoke` the canonical exposition byte-compares
//!   against `scripts/observe-exposition.golden`
//!   (`IOLAP_UPDATE_GOLDEN=1` regenerates after an audited change).
//!
//! Determinism and golden failures are violations and fail the harness;
//! overhead is recorded, not asserted (single-run timing noise at smoke
//! scale would make a hard gate flaky). The record lands in the BENCH
//! JSON's `"telemetry"` section (schema v6).

use crate::{conviva_workload, ExpScale, Workload};
use iolap_core::{canonical_events, export_jsonl, IolapDriver, ShardExec, TraceMode};
use iolap_server::shard::ThreadShardPool;
use iolap_server::{canonical_trace, Server, ServerConfig, SessionSpec, SloCounters, StopPolicy};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard counts the cross-shard trace-identity check sweeps.
pub const OBSERVE_SHARD_COUNTS: &[usize] = &[0, 1, 2, 4];

/// The full `experiments observe` record (`"telemetry"` JSON section).
#[derive(Clone, Debug)]
pub struct TelemetryRecord {
    /// Whether this was the pinned smoke configuration.
    pub smoke: bool,
    /// Sessions in the pinned fleet.
    pub sessions: usize,
    /// Scheduler journal events one fleet run recorded.
    pub trace_events: usize,
    /// Bytes of the canonical exposition.
    pub exposition_bytes: usize,
    /// Two fresh fleet runs rendered byte-identical canonical expositions.
    pub exposition_deterministic: bool,
    /// The same runs' canonical scheduler traces byte-compared.
    pub trace_deterministic: bool,
    /// Driver-level canonical trace exports byte-identical across
    /// [`OBSERVE_SHARD_COUNTS`].
    pub cross_shard_trace_identical: bool,
    /// Canonical exposition matched `scripts/observe-exposition.golden`
    /// (trivially true outside `--smoke`).
    pub golden_ok: bool,
    /// Stop-policy burn counters after one fleet run.
    pub slo: SloCounters,
    /// Fleet wall-clock with the journal off (min of three runs, ms).
    pub overhead_off_ms: f64,
    /// Fleet wall-clock with the journal armed (min of three runs, ms).
    pub overhead_on_ms: f64,
}

impl TelemetryRecord {
    /// Telemetry overhead in percent of the untraced fleet wall-clock
    /// (can be slightly negative under timer noise).
    pub fn overhead_pct(&self) -> f64 {
        if self.overhead_off_ms > 0.0 {
            100.0 * (self.overhead_on_ms / self.overhead_off_ms - 1.0)
        } else {
            0.0
        }
    }

    /// Determinism/golden violations (overhead is recorded, not asserted).
    pub fn violations(&self) -> usize {
        [
            self.exposition_deterministic,
            self.trace_deterministic,
            self.cross_shard_trace_identical,
            self.golden_ok,
        ]
        .iter()
        .filter(|ok| !**ok)
        .count()
    }
}

/// The pinned fleet: two tenants plus a hostile label that must survive
/// both JSON and Prometheus escaping, and one session per stop-policy
/// family. The `Deadline` budget is generous so the session always
/// completes inside it — a tight budget would make the end label (and the
/// exposition) timing-dependent.
fn fleet_plan(batches: usize) -> Vec<(&'static str, StopPolicy, &'static str)> {
    vec![
        ("C2", StopPolicy::complete(), "acme"),
        (
            "C2",
            StopPolicy::RelativeCI {
                target: 0.5,
                confidence: 0.95,
            },
            "acme",
        ),
        (
            "C3",
            StopPolicy::Batches((batches / 2).max(1)),
            "bob\"s \\shop",
        ),
        ("SBI", StopPolicy::Deadline(Duration::from_secs(60)), ""),
    ]
}

fn build_driver(w: &Workload, query: &str, scale: &ExpScale) -> IolapDriver {
    let q = w
        .queries
        .iter()
        .find(|q| q.id == query)
        .unwrap_or_else(|| panic!("unknown observe query {query}"))
        .clone();
    let pq = w.plan(&q);
    IolapDriver::from_plan(&pq, &w.catalog, q.stream_table, scale.config())
        .unwrap_or_else(|e| panic!("{query}: {e}"))
}

/// One fleet run's canonical exports and bookkeeping.
struct FleetRun {
    exposition: String,
    trace: String,
    slo: SloCounters,
    sessions: usize,
    events: usize,
    elapsed_ms: f64,
}

/// Run the pinned fleet through a fresh server. Sessions are joined (no
/// compute left) *before* any client drains, so the `sess.finish` mark's
/// `state=` detail is `draining` on every run — a client racing the last
/// batch would make it flip between `draining` and `done`.
fn fleet_run(w: &Workload, scale: &ExpScale, mode: TraceMode) -> FleetRun {
    let cfg = ServerConfig::with_workers(2)
        .max_live(8)
        .shards(2)
        .trace(mode);
    let server = Server::new(cfg);
    let started = Instant::now();
    let handles: Vec<_> = fleet_plan(scale.batches)
        .into_iter()
        .enumerate()
        .map(|(i, (query, policy, tenant))| {
            let driver = build_driver(w, query, scale);
            let spec = SessionSpec::named(tenant).policy(policy);
            server
                .submit(driver, spec)
                .unwrap_or_else(|e| panic!("observe submit {i} rejected: {e}"))
        })
        .collect();
    for h in &handles {
        h.join(Duration::from_secs(30));
    }
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    for h in &handles {
        h.drain(Duration::from_secs(30));
    }
    let exposition = server.exposition(true);
    let events = server.trace_events();
    let trace = export_jsonl(&canonical_trace(&events), true);
    let telemetry = server.telemetry();
    server.shutdown();
    FleetRun {
        exposition,
        trace,
        slo: *telemetry.slo(),
        sessions: telemetry.sessions().len(),
        events: events.len(),
        elapsed_ms,
    }
}

/// Driver-level traced C2 run at `shards` fold workers, exported through
/// the canonical (shard-frame-free, renumbered) form.
fn traced_export(w: &Workload, scale: &ExpScale, shards: usize) -> String {
    let q = w.queries.iter().find(|q| q.id == "C2").unwrap().clone();
    let pq = w.plan(&q);
    let cfg = scale.config().trace_mode(TraceMode::Journal);
    let mut d = IolapDriver::from_plan(&pq, &w.catalog, q.stream_table, cfg)
        .unwrap_or_else(|e| panic!("C2: {e}"));
    if shards > 0 {
        d.set_shard_exec(Arc::new(ThreadShardPool::new(shards)) as Arc<dyn ShardExec>);
    }
    d.run_to_completion().unwrap_or_else(|e| panic!("C2: {e}"));
    export_jsonl(&canonical_events(&d.trace_events()), true)
}

/// Run the telemetry-plane sweep; returns the record and its violation
/// count. `smoke` pins the scale (independent of `IOLAP_SCALE`, like
/// `trace --smoke`) and arms the exposition golden check.
pub fn observe_sweep(scale: &ExpScale, smoke: bool) -> (TelemetryRecord, usize) {
    let scale = if smoke {
        ExpScale {
            tpch_sf: 0.1,
            conviva_rows: 600,
            batches: 6,
            trials: 16,
            seed: 2016,
        }
    } else {
        *scale
    };
    let w = conviva_workload(&scale);

    // Determinism: two fresh fleet runs, canonical exports byte-compared.
    let a = fleet_run(&w, &scale, TraceMode::Journal);
    let b = fleet_run(&w, &scale, TraceMode::Journal);
    let exposition_deterministic = a.exposition == b.exposition;
    let trace_deterministic = a.trace == b.trace;
    if !exposition_deterministic {
        print_first_divergence("exposition", &a.exposition, &b.exposition);
    }
    if !trace_deterministic {
        print_first_divergence("trace", &a.trace, &b.trace);
    }
    println!(
        "observe: fleet {} sessions — exposition {} B ({}), trace {} events ({})",
        a.sessions,
        a.exposition.len(),
        if exposition_deterministic {
            "byte-identical across runs"
        } else {
            "VIOLATION: runs diverged"
        },
        a.events,
        if trace_deterministic {
            "byte-identical across runs"
        } else {
            "VIOLATION: runs diverged"
        },
    );

    // Cross-shard trace identity at the driver level.
    let exports: Vec<String> = OBSERVE_SHARD_COUNTS
        .iter()
        .map(|&n| traced_export(&w, &scale, n))
        .collect();
    let cross_shard_trace_identical = exports.iter().all(|e| *e == exports[0]);
    println!(
        "observe: canonical C2 trace across shards {:?} — {}",
        OBSERVE_SHARD_COUNTS,
        if cross_shard_trace_identical {
            "byte-identical"
        } else {
            "VIOLATION: exports diverged"
        }
    );

    // Overhead: journal off vs armed, min of three pairs after warm-up.
    let _warm = fleet_run(&w, &scale, TraceMode::Off);
    let min_of = |mode: TraceMode| {
        (0..3)
            .map(|_| fleet_run(&w, &scale, mode).elapsed_ms)
            .fold(f64::INFINITY, f64::min)
    };
    let overhead_off_ms = min_of(TraceMode::Off);
    let overhead_on_ms = min_of(TraceMode::Journal);

    // Golden: the canonical exposition is part of the offline gate.
    let golden_ok = if smoke {
        check_golden(&a.exposition)
    } else {
        println!("observe: golden check skipped (full scale; run --smoke)");
        true
    };

    let record = TelemetryRecord {
        smoke,
        sessions: a.sessions,
        trace_events: a.events,
        exposition_bytes: a.exposition.len(),
        exposition_deterministic,
        trace_deterministic,
        cross_shard_trace_identical,
        golden_ok,
        slo: a.slo,
        overhead_off_ms,
        overhead_on_ms,
    };
    println!(
        "observe: overhead off/on = {:.1}/{:.1} ms ({:+.1}%, budget 5%); slo ci {}/{} met, \
         deadline {}/{} met, {} ci batches saved",
        record.overhead_off_ms,
        record.overhead_on_ms,
        record.overhead_pct(),
        record.slo.ci_met,
        record.slo.ci_sessions,
        record.slo.deadline_met,
        record.slo.deadline_sessions,
        record.slo.ci_batches_saved,
    );
    let v = record.violations();
    if v > 0 {
        eprintln!("observe: {v} determinism/golden violation(s)");
    }
    (record, v)
}

/// Print the first line where two canonical exports differ — enough to
/// localize a determinism break without dumping kilobytes of exposition.
fn print_first_divergence(what: &str, a: &str, b: &str) {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            eprintln!(
                "observe: {what} line {} diverged:\n  run A: {la}\n  run B: {lb}",
                i + 1
            );
            return;
        }
    }
    eprintln!(
        "observe: {what} runs diverged in length only ({} vs {} lines)",
        a.lines().count(),
        b.lines().count()
    );
}

fn check_golden(exposition: &str) -> bool {
    let golden_path = iolap_analyze::repo_root().join("scripts/observe-exposition.golden");
    if std::env::var("IOLAP_UPDATE_GOLDEN").as_deref() == Ok("1") {
        return match std::fs::write(&golden_path, exposition) {
            Ok(()) => {
                println!(
                    "observe: updated {} ({} bytes)",
                    golden_path.display(),
                    exposition.len()
                );
                true
            }
            Err(e) => {
                eprintln!("observe: failed to write {}: {e}", golden_path.display());
                false
            }
        };
    }
    match std::fs::read_to_string(&golden_path) {
        Ok(golden) if golden == exposition => {
            println!(
                "observe: exposition golden check OK ({} bytes, byte-identical)",
                exposition.len()
            );
            true
        }
        Ok(_) => {
            eprintln!(
                "observe: exposition drifted from {} — if the change is intentional, \
                 regenerate with IOLAP_UPDATE_GOLDEN=1",
                golden_path.display()
            );
            false
        }
        Err(e) => {
            eprintln!("observe: cannot read {}: {e}", golden_path.display());
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_plan_covers_every_policy_family_and_a_hostile_label() {
        let plan = fleet_plan(6);
        assert!(plan
            .iter()
            .any(|(_, p, _)| matches!(p, StopPolicy::RelativeCI { .. })));
        assert!(plan
            .iter()
            .any(|(_, p, _)| matches!(p, StopPolicy::Deadline(_))));
        assert!(plan
            .iter()
            .any(|(_, p, _)| matches!(p, StopPolicy::Batches(n) if *n < usize::MAX)));
        assert!(plan.iter().any(|(_, _, t)| t.contains('"')));
        assert!(plan.iter().any(|(_, _, t)| t.is_empty()));
    }

    #[test]
    fn violations_count_failed_checks_only() {
        let rec = TelemetryRecord {
            smoke: true,
            sessions: 4,
            trace_events: 10,
            exposition_bytes: 100,
            exposition_deterministic: true,
            trace_deterministic: false,
            cross_shard_trace_identical: true,
            golden_ok: false,
            slo: SloCounters::default(),
            overhead_off_ms: 10.0,
            overhead_on_ms: 100.0, // over budget — recorded, never counted
        };
        assert_eq!(rec.violations(), 2);
        assert!((rec.overhead_pct() - 900.0).abs() < 1e-9);
    }
}
