//! # iolap-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§8). Each `exp_*` binary prints the same rows/series the
//! paper reports; `EXPERIMENTS.md` records paper-vs-measured shape
//! comparisons. Criterion benches under `benches/` exercise the same code
//! paths at reduced scale so `cargo bench --workspace` covers each
//! experiment.

#![warn(missing_docs)]

pub mod analysis;
pub mod durability;
pub mod json;
pub mod observe;
pub mod serve;
pub mod shard;

pub use analysis::{run_analysis, AnalysisRecord};
pub use durability::{durability_sweep, DurabilityRecord};
pub use observe::{observe_sweep, TelemetryRecord};
pub use shard::{shard_sweep, ShardCell, ShardingRecord, TcpProbe};

// Workload constructors install the static plan verifier into the core
// driver's debug hook, so every debug-build experiment re-verifies its
// rewritten plan before batch 0.
use iolap_baselines::{run_baseline_plan, BaselineReport, HdaDriver};
use iolap_core::{
    BatchReport, FaultKind, FaultPlan, IolapConfig, IolapDriver, Metrics, TraceEvent, TraceMode,
};
use iolap_engine::{plan_sql, FunctionRegistry, PlannedQuery};
use iolap_relation::{Catalog, PartitionMode};
use iolap_workloads::QuerySpec;
use std::time::Duration;

/// Experiment scale knobs (shrunk from the paper's 1–2 TB to laptop scale).
#[derive(Clone, Copy, Debug)]
pub struct ExpScale {
    /// TPC-H-lite scale factor (`1.0` ≈ 6000 lineorder rows).
    pub tpch_sf: f64,
    /// Conviva sessions rows.
    pub conviva_rows: usize,
    /// Mini-batches per query (the paper's 1 TB / 11.5 GB ≈ 87 batches;
    /// we default to a smaller count that still shows the per-batch
    /// trends).
    pub batches: usize,
    /// Bootstrap trials (paper: 100).
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ExpScale {
    /// Full experiment scale (the `exp_*` binaries).
    pub fn full() -> Self {
        ExpScale {
            tpch_sf: 4.0,
            conviva_rows: 24_000,
            batches: 20,
            trials: 100,
            seed: 2016,
        }
    }

    /// Reduced scale for Criterion benches.
    pub fn bench() -> Self {
        ExpScale {
            tpch_sf: 0.5,
            conviva_rows: 3_000,
            batches: 8,
            trials: 40,
            seed: 2016,
        }
    }

    /// Scale taken from the `IOLAP_SCALE` environment variable
    /// (`full` | `bench` | a float multiplier on `full`).
    pub fn from_env() -> Self {
        match std::env::var("IOLAP_SCALE").ok().as_deref() {
            Some("bench") => ExpScale::bench(),
            Some(s) => {
                if let Ok(mult) = s.parse::<f64>() {
                    let base = ExpScale::full();
                    ExpScale {
                        tpch_sf: base.tpch_sf * mult,
                        conviva_rows: ((base.conviva_rows as f64) * mult) as usize,
                        ..base
                    }
                } else {
                    ExpScale::full()
                }
            }
            None => ExpScale::full(),
        }
    }

    /// Default iOLAP config at this scale.
    pub fn config(&self) -> IolapConfig {
        let mut c = IolapConfig::with_batches(self.batches)
            .trials(self.trials)
            .seed(self.seed);
        c.partition_mode = PartitionMode::RowShuffle;
        c
    }
}

/// A prepared workload: catalog + registry + query list.
pub struct Workload {
    /// Workload label (`"TPC-H"` / `"Conviva"`).
    pub name: &'static str,
    /// The data.
    pub catalog: Catalog,
    /// Functions (UDFs/UDAFs for Conviva).
    pub registry: FunctionRegistry,
    /// The query suite.
    pub queries: Vec<QuerySpec>,
}

/// Build the TPC-H-lite workload at `scale`.
pub fn tpch_workload(scale: &ExpScale) -> Workload {
    iolap_analyze::install();
    Workload {
        name: "TPC-H",
        catalog: iolap_workloads::tpch_catalog(scale.tpch_sf, scale.seed),
        registry: FunctionRegistry::with_builtins(),
        queries: iolap_workloads::tpch_queries(),
    }
}

/// Build the Conviva workload at `scale`.
pub fn conviva_workload(scale: &ExpScale) -> Workload {
    iolap_analyze::install();
    Workload {
        name: "Conviva",
        catalog: iolap_workloads::conviva_catalog(scale.conviva_rows, scale.seed),
        registry: iolap_workloads::conviva_registry(),
        queries: iolap_workloads::conviva_queries(),
    }
}

impl Workload {
    /// Plan one of this workload's queries.
    pub fn plan(&self, q: &QuerySpec) -> PlannedQuery {
        plan_sql(q.sql, &self.catalog, &self.registry).unwrap_or_else(|e| panic!("{}: {e}", q.id))
    }

    /// Run a query through iOLAP to completion.
    pub fn run_iolap(&self, q: &QuerySpec, config: IolapConfig) -> Vec<BatchReport> {
        let pq = self.plan(q);
        let mut d = IolapDriver::from_plan(&pq, &self.catalog, q.stream_table, config)
            .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        d.run_to_completion()
            .unwrap_or_else(|e| panic!("{}: {e}", q.id))
    }

    /// Run a query through iOLAP to completion, also returning the
    /// driver's cumulative metrics (for the `--json` record).
    pub fn run_iolap_with_metrics(
        &self,
        q: &QuerySpec,
        config: IolapConfig,
    ) -> (Vec<BatchReport>, Metrics) {
        let pq = self.plan(q);
        let mut d = IolapDriver::from_plan(&pq, &self.catalog, q.stream_table, config)
            .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        let reports = d
            .run_to_completion()
            .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        let cumulative = d.metrics().clone();
        (reports, cumulative)
    }

    /// Run a query through iOLAP with the full event journal armed,
    /// returning the batch reports, the recorded trace, and the driver's
    /// cumulative metrics (histograms included) — the `experiments trace`
    /// subcommand's data source.
    pub fn run_iolap_traced(
        &self,
        q: &QuerySpec,
        config: IolapConfig,
    ) -> (Vec<BatchReport>, Vec<TraceEvent>, Metrics) {
        let pq = self.plan(q);
        let mut d = IolapDriver::from_plan(
            &pq,
            &self.catalog,
            q.stream_table,
            config.trace_mode(TraceMode::Journal),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        let reports = d
            .run_to_completion()
            .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        let events = d.trace_events();
        let cumulative = d.metrics().clone();
        (reports, events, cumulative)
    }

    /// Run a query through HDA to completion.
    pub fn run_hda(&self, q: &QuerySpec, config: IolapConfig) -> Vec<BatchReport> {
        let pq = self.plan(q);
        let mut d = HdaDriver::from_plan(&pq, &self.catalog, q.stream_table, config)
            .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        d.run_to_completion()
            .unwrap_or_else(|e| panic!("{}: {e}", q.id))
    }

    /// Run the exact batch baseline, timed.
    pub fn run_baseline(&self, q: &QuerySpec) -> BaselineReport {
        let pq = self.plan(q);
        run_baseline_plan(&pq, &self.catalog).unwrap_or_else(|e| panic!("{}: {e}", q.id))
    }
}

/// Total latency across batch reports.
pub fn total_latency(reports: &[BatchReport]) -> Duration {
    reports.iter().map(|r| r.elapsed).sum()
}

/// Latency until the driver has processed at least `fraction` of the data
/// (the paper's "iOLAP on 5% / 10% data" bars).
pub fn latency_at_fraction(reports: &[BatchReport], fraction: f64) -> Duration {
    let mut acc = Duration::ZERO;
    for r in reports {
        acc += r.elapsed;
        if r.fraction >= fraction {
            return acc;
        }
    }
    acc
}

/// `a / b` as a float ratio of durations (`1.0` when `b` is zero).
pub fn ratio(a: Duration, b: Duration) -> f64 {
    let (a, b) = (a.as_secs_f64(), b.as_secs_f64());
    if b == 0.0 {
        1.0
    } else {
        a / b
    }
}

/// Format a duration in milliseconds with 2 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Print a header line for an experiment section.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Tracing cost on the Fig 9(a) optimization-breakdown sweep (Conviva C2):
/// the same query run untraced and with the full journal armed.
#[derive(Clone, Debug)]
pub struct TraceOverhead {
    /// Per batch: `(untraced ms, traced ms)`.
    pub per_batch_ms: Vec<(f64, f64)>,
    /// Total latency, tracing off.
    pub total_off: Duration,
    /// Total latency, journal armed.
    pub total_on: Duration,
    /// Journal events the traced run recorded.
    pub events: usize,
}

impl TraceOverhead {
    /// Tracing overhead in percent of the untraced total (can be slightly
    /// negative under timer noise).
    pub fn pct(&self) -> f64 {
        100.0 * (ratio(self.total_on, self.total_off) - 1.0)
    }
}

/// Measure tracing overhead on Conviva C2 (the Fig 9(a) query): one warm-up
/// run, then an untraced and a journal-armed run back to back. The `--json`
/// record embeds the result against the < 5 % overhead budget.
pub fn measure_trace_overhead(scale: &ExpScale) -> TraceOverhead {
    let w = conviva_workload(scale);
    let q = w.queries.iter().find(|q| q.id == "C2").unwrap().clone();
    let _warm = w.run_iolap(&q, scale.config());
    let off = w.run_iolap(&q, scale.config());
    let (on, events, _) = w.run_iolap_traced(&q, scale.config());
    TraceOverhead {
        per_batch_ms: off
            .iter()
            .zip(on.iter())
            .map(|(a, b)| (a.elapsed.as_secs_f64() * 1e3, b.elapsed.as_secs_f64() * 1e3))
            .collect(),
        total_off: total_latency(&off),
        total_on: total_latency(&on),
        events: events.len(),
    }
}

/// One fault-storm cell: a single driver run under one injected fault.
#[derive(Clone, Debug)]
pub struct FaultStormRun {
    /// Workload label.
    pub workload: &'static str,
    /// Query id (`"Q17"`, `"C8"`, …).
    pub query: &'static str,
    /// Fault-kind label (see `FaultKind::label`).
    pub kind: &'static str,
    /// Batch the fault was armed at.
    pub batch: usize,
    /// Checkpoint interval the run used.
    pub interval: usize,
    /// Total fault fires observed by the injector.
    pub fired: u64,
    /// Whether the final batch's answer agreed with the exact offline
    /// baseline (Theorem 1 at `m = 1`).
    pub agree: bool,
    /// Batches that reported a recovery.
    pub recoveries: usize,
    /// Flight-recorder dump captured after the run (the storm arms the
    /// bounded ring, so every run carries its own black box).
    pub dump: Option<String>,
}

/// The most informative flight-recorder dump in a storm: prefer a run
/// whose recovery cascaded, then any run that replayed, then any run whose
/// fault fired at all.
pub fn storm_flight_dump(runs: &[FaultStormRun]) -> Option<&str> {
    let by = |pat: &str| {
        runs.iter()
            .filter_map(|r| r.dump.as_deref())
            .find(|d| d.contains(pat))
    };
    by("recovery.cascade")
        .or_else(|| by("recovery.replay"))
        .or_else(|| by("fault.injected"))
}

/// Every fault kind the storm sweeps, with its stable label.
pub fn fault_storm_kinds() -> Vec<(&'static str, FaultKind)> {
    vec![
        (
            "fail_range",
            FaultKind::FailRange {
                agg: None,
                column: None,
            },
        ),
        ("drop_checkpoint", FaultKind::DropCheckpoint),
        ("corrupt_checkpoint", FaultKind::CorruptCheckpoint),
        ("worker_panic", FaultKind::WorkerPanic),
        ("deref_panic", FaultKind::DerefPanic),
        ("perturb_ranges", FaultKind::PerturbRanges { epsilon: 0.25 }),
    ]
}

/// The §5.1 fault storm: sweep fault kind × armed batch × checkpoint
/// interval over the nested flagship queries (TPC-H Q17/Q20, Conviva C8),
/// checking every run's *final* answer against the exact offline baseline
/// — Theorem 1's anchor point, which fault injection must not move.
/// `smoke` shrinks the sweep to one batch point and two intervals so the
/// offline gate stays fast; the full sweep covers three of each.
pub fn fault_storm(scale: &ExpScale, smoke: bool) -> Vec<FaultStormRun> {
    fault_storm_sharded(scale, smoke, 0)
}

/// [`fault_storm`] with fold dispatch offloaded to an in-process shard
/// pool of `shards` workers (`0` = unsharded). The scale-out path must
/// not cost a single Theorem-1-exact cell — see `experiments shard`.
pub fn fault_storm_sharded(scale: &ExpScale, smoke: bool, shards: usize) -> Vec<FaultStormRun> {
    // Injected worker/deref panics are caught and recovered by the driver,
    // but the default panic hook would still spray their backtraces over
    // the report — silence it for the storm's duration.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        fault_storm_inner(scale, smoke, shards)
    }));
    std::panic::set_hook(prev_hook);
    match out {
        Ok(runs) => runs,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

fn fault_storm_inner(scale: &ExpScale, smoke: bool, shards: usize) -> Vec<FaultStormRun> {
    let mut out = Vec::new();
    let suites: [(Workload, &[&str]); 2] = [
        (tpch_workload(scale), &["Q17", "Q20"]),
        (conviva_workload(scale), &["C8"]),
    ];
    let b = scale.batches;
    let batch_points: Vec<usize> = if smoke {
        // One point, chosen to be a save batch under every swept interval
        // so the checkpoint faults actually arm (first i ≥ b/2 with
        // (i+1) % 3 == 0 — also a save batch at interval 1).
        vec![(b / 2..b).find(|i| (i + 1) % 3 == 0).unwrap_or(b / 2)]
    } else {
        vec![1, b / 2, b.saturating_sub(1)]
    };
    let intervals: Vec<usize> = if smoke { vec![1, 3] } else { vec![1, 2, 3] };
    for (w, ids) in suites {
        for id in ids {
            let q = w
                .queries
                .iter()
                .find(|q| q.id == *id)
                .unwrap_or_else(|| panic!("unknown storm query {id}"))
                .clone();
            let baseline = w.run_baseline(&q);
            let pq = w.plan(&q);
            for (label, kind) in fault_storm_kinds() {
                for &bp in &batch_points {
                    for &iv in &intervals {
                        let mut cfg = scale.config();
                        cfg.checkpoint_interval = iv;
                        if matches!(kind, FaultKind::WorkerPanic) {
                            cfg = cfg.parallelism(2);
                        }
                        // Every storm run flies with the bounded recorder
                        // armed: a run that dies leaves a black box, and a
                        // run that recovers documents its replays.
                        let cfg = cfg
                            .fault_plan(FaultPlan::new(scale.seed).with(bp, kind.clone()))
                            .flight_recorder();
                        let mut d = IolapDriver::from_plan(&pq, &w.catalog, q.stream_table, cfg)
                            .unwrap_or_else(|e| panic!("{id}: {e}"));
                        if shards > 0 {
                            d.set_shard_exec(std::sync::Arc::new(
                                iolap_server::shard::ThreadShardPool::new(shards),
                            ));
                        }
                        let reports = d
                            .run_to_completion()
                            .unwrap_or_else(|e| panic!("{id} under {label}@{bp}: {e}"));
                        let last = reports.last().expect("at least one batch");
                        out.push(FaultStormRun {
                            workload: w.name,
                            query: q.id,
                            kind: label,
                            batch: bp,
                            interval: iv,
                            fired: d.fault_fires().iter().map(|(_, _, n)| n).sum(),
                            agree: last.result.relation.approx_eq(&baseline.relation, 1e-6),
                            recoveries: reports.iter().filter(|r| r.recovered).count(),
                            dump: d.flight_dump(),
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build_at_bench_scale() {
        let scale = ExpScale::bench();
        let t = tpch_workload(&scale);
        assert!(t.catalog.contains("lineorder"));
        let c = conviva_workload(&scale);
        assert!(c.catalog.contains("sessions"));
        assert_eq!(c.queries.len(), 13); // SBI + C1..C12
    }

    #[test]
    fn latency_helpers() {
        let scale = ExpScale::bench();
        let w = conviva_workload(&scale);
        let q = w.queries.iter().find(|q| q.id == "C3").unwrap().clone();
        let reports = w.run_iolap(&q, scale.config());
        assert_eq!(reports.len(), scale.batches);
        let at_half = latency_at_fraction(&reports, 0.5);
        let total = total_latency(&reports);
        assert!(at_half <= total);
        assert!(ratio(total, at_half) >= 1.0);
    }
}
