//! Sharded scale-out experiments: the sweep behind `experiments shard`.
//!
//! The paper's §8 scalability study drives two axes: *scale-up* (more
//! cores in one process) vs *scale-out* (more worker nodes, partial
//! state shipped to a coordinator), with "data shipped" as the cost of
//! the second. The sweep reproduces both on the repo's substrate:
//!
//! * a shards × mini-batch grid over fold-heavy workload queries, each
//!   cell a full driver run with an in-process [`ThreadShardPool`]
//!   attached (`shards = 0` is the single-process baseline);
//! * a TCP probe: the same run against real [`serve_shard`] workers over
//!   loopback sockets, with the measured response bytes as the
//!   data-shipped axis (skipped gracefully where the sandbox denies
//!   loopback binds);
//! * a fault-storm replay at `N = 2` shards: every §5.1 fault cell must
//!   stay Theorem-1-exact when fold dispatch is offloaded.
//!
//! The core contract checked cell by cell is *determinism*: a sharded
//! run's published answers must be byte-identical to the unsharded
//! baseline (the partition-grid merge discipline — see
//! `iolap_core::shard`). Any divergence is a violation and fails the
//! harness; throughput and shipped bytes are recorded, not asserted.

use crate::serve::report_canon;
use crate::{conviva_workload, fault_storm_sharded, section, ExpScale, FaultStormRun, Workload};
use iolap_core::{BatchReport, IolapDriver, ShardExec};
use iolap_server::shard::{serve_shard, TcpShardPool, ThreadShardPool};
use std::sync::Arc;
use std::time::Instant;

/// One cell of the shards × batch-count grid.
#[derive(Clone, Debug)]
pub struct ShardCell {
    /// Query id.
    pub query: &'static str,
    /// Shard count (`0` = unsharded single-process baseline).
    pub shards: usize,
    /// Mini-batches the stream was split into (the batch-size axis:
    /// fewer batches ⇒ more rows, and more grid partitions, per batch).
    pub batches: usize,
    /// Stream rows.
    pub rows: usize,
    /// End-to-end wall clock.
    pub elapsed_ms: f64,
    /// Stream rows per second of wall clock.
    pub rows_per_s: f64,
    /// Total coordinator-side dispatch wait (`shard.dispatch_ns`).
    pub dispatch_ms: f64,
    /// Total partition-order merge time (`shard.merge_ns`).
    pub merge_ms: f64,
    /// Partial-state bytes shipped shard→coordinator.
    pub bytes_shipped: u64,
    /// Whether every published report was byte-identical to the
    /// unsharded baseline of the same (query, batches) point.
    pub identical: bool,
}

/// Outcome of the loopback TCP probe.
#[derive(Clone, Debug)]
pub struct TcpProbe {
    /// Worker connections used.
    pub shards: usize,
    /// Byte-identity vs the unsharded baseline.
    pub identical: bool,
    /// Measured response-frame bytes (the paper's data-shipped axis).
    pub bytes_shipped: u64,
    /// Wall clock of the TCP run.
    pub elapsed_ms: f64,
    /// Total `shard.fold` exchanges across worker connections
    /// (the coordinator-side `shard.stats` view).
    pub worker_folds: u64,
    /// Total partials acknowledged as merged.
    pub worker_acked: u64,
    /// Total response-line bytes per the worker-stats counters.
    pub worker_response_bytes: u64,
}

/// The full `experiments shard` record (`"sharding"` JSON section).
#[derive(Clone, Debug)]
pub struct ShardingRecord {
    /// Whether this was the pinned smoke configuration.
    pub smoke: bool,
    /// Grid cells in run order.
    pub cells: Vec<ShardCell>,
    /// Loopback TCP probe; `None` when the sandbox denies loopback.
    pub tcp: Option<TcpProbe>,
    /// Fault-storm cells replayed at `N = 2` shards.
    pub storm_runs: usize,
    /// Of those, cells whose final answer stayed Theorem-1-exact.
    pub storm_agree: usize,
    /// Whether some sharded cell beat the unsharded baseline's wall
    /// clock on the same (query, batches) point — the scale-out win.
    pub scaleout_win: bool,
}

impl ShardingRecord {
    /// Determinism/exactness violations across the record (throughput is
    /// recorded, never asserted).
    pub fn violations(&self) -> usize {
        let cells = self.cells.iter().filter(|c| !c.identical).count();
        let tcp = self
            .tcp
            .as_ref()
            .map(|t| usize::from(!t.identical))
            .unwrap_or(0);
        cells + tcp + (self.storm_runs - self.storm_agree)
    }
}

/// Canonical serialization of a whole run's published answers.
fn run_canon(reports: &[BatchReport]) -> String {
    reports.iter().map(report_canon).collect()
}

fn metric_total(reports: &[BatchReport], name: &str) -> u64 {
    reports
        .iter()
        .flat_map(|r| r.metrics.iter())
        .filter(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .sum()
}

fn run_with(
    w: &Workload,
    query: &'static str,
    batches: usize,
    scale: &ExpScale,
    pool: Option<Arc<dyn ShardExec>>,
) -> (Vec<BatchReport>, f64) {
    let q = w
        .queries
        .iter()
        .find(|q| q.id == query)
        .unwrap_or_else(|| panic!("unknown shard-sweep query {query}"))
        .clone();
    let pq = w.plan(&q);
    let mut cfg = scale.config();
    cfg.num_batches = batches;
    let mut d = IolapDriver::from_plan(&pq, &w.catalog, q.stream_table, cfg)
        .unwrap_or_else(|e| panic!("{query}: {e}"));
    if let Some(pool) = pool {
        d.set_shard_exec(pool);
    }
    let start = Instant::now();
    let reports = d
        .run_to_completion()
        .unwrap_or_else(|e| panic!("{query}: {e}"));
    (reports, start.elapsed().as_secs_f64() * 1e3)
}

/// Run the shards × batch-count sweep; returns the record and its
/// violation count. `smoke` pins one grid point per axis for the offline
/// gate; the full sweep covers the crossover region.
pub fn shard_sweep(scale: &ExpScale, smoke: bool) -> (ShardingRecord, usize) {
    // The sweep wants fold-dominated batches with several grid partitions
    // each, so rows-per-batch must clear a few multiples of
    // PARTITION_ROWS regardless of the ambient scale.
    let mut scale = *scale;
    scale.conviva_rows = scale.conviva_rows.max(if smoke { 12_000 } else { 24_000 });
    let w = conviva_workload(&scale);
    let rows = scale.conviva_rows;
    let queries: &[&'static str] = if smoke { &["C2"] } else { &["SBI", "C2"] };
    let batch_counts: &[usize] = if smoke { &[4] } else { &[4, 8] };
    let shard_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    let mut cells = Vec::new();
    let mut scaleout_win = false;
    println!(
        "{:<6} {:>7} {:>8} {:>11} {:>12} {:>11} {:>9} {:>13} {:>10}",
        "query",
        "shards",
        "batches",
        "elapsed_ms",
        "rows_per_s",
        "dispatch_ms",
        "merge_ms",
        "bytes_shipped",
        "identical"
    );
    for &query in queries {
        for &batches in batch_counts {
            // Unsharded baseline for this (query, batches) point.
            let (base_reports, base_ms) = run_with(&w, query, batches, &scale, None);
            let baseline_canon = run_canon(&base_reports);
            let mut cell = ShardCell {
                query,
                shards: 0,
                batches,
                rows,
                elapsed_ms: base_ms,
                rows_per_s: rows as f64 / (base_ms / 1e3),
                dispatch_ms: 0.0,
                merge_ms: 0.0,
                bytes_shipped: 0,
                identical: true,
            };
            print_cell(&cell);
            cells.push(cell.clone());
            for &shards in shard_counts {
                let pool: Arc<dyn ShardExec> = Arc::new(ThreadShardPool::new(shards));
                let (reports, ms) = run_with(&w, query, batches, &scale, Some(Arc::clone(&pool)));
                cell = ShardCell {
                    query,
                    shards,
                    batches,
                    rows,
                    elapsed_ms: ms,
                    rows_per_s: rows as f64 / (ms / 1e3),
                    dispatch_ms: metric_total(&reports, "shard.dispatch_ns") as f64 / 1e6,
                    merge_ms: metric_total(&reports, "shard.merge_ns") as f64 / 1e6,
                    bytes_shipped: pool.bytes_shipped(),
                    identical: run_canon(&reports) == baseline_canon,
                };
                scaleout_win |= cell.identical && shards > 1 && ms < base_ms;
                print_cell(&cell);
                cells.push(cell);
            }
        }
    }

    // TCP probe: the same determinism claim across a real process-style
    // boundary, with measured frame bytes.
    let tcp = tcp_probe(&w, queries[0], batch_counts[0], &scale);
    match &tcp {
        Some(p) => println!(
            "tcp probe: shards={} identical={} bytes_shipped={} elapsed_ms={:.1} \
             worker_folds={} worker_acked={} worker_response_bytes={}",
            p.shards,
            p.identical,
            p.bytes_shipped,
            p.elapsed_ms,
            p.worker_folds,
            p.worker_acked,
            p.worker_response_bytes
        ),
        None => println!("tcp probe: skipped (loopback bind denied)"),
    }

    // Fault-storm replay at N=2: offloaded dispatch must not cost a
    // single exact cell.
    section("shard: fault storm at N=2 shards");
    let storm = fault_storm_sharded(&scale, true, 2);
    let agree = storm.iter().filter(|r| r.agree).count();
    println!(
        "storm: {agree}/{} cells Theorem-1-exact with 2-shard dispatch",
        storm.len()
    );
    report_storm_failures(&storm);

    let record = ShardingRecord {
        smoke,
        cells,
        tcp,
        storm_runs: storm.len(),
        storm_agree: agree,
        scaleout_win,
    };
    let v = record.violations();
    if v > 0 {
        eprintln!("shard sweep: {v} determinism/exactness violation(s)");
    }
    if record.scaleout_win {
        println!("scale-out win: some sharded cell beat the single-process baseline");
    }
    (record, v)
}

fn print_cell(c: &ShardCell) {
    println!(
        "{:<6} {:>7} {:>8} {:>11.1} {:>12.0} {:>11.2} {:>9.2} {:>13} {:>10}",
        c.query,
        c.shards,
        c.batches,
        c.elapsed_ms,
        c.rows_per_s,
        c.dispatch_ms,
        c.merge_ms,
        c.bytes_shipped,
        c.identical
    );
}

fn report_storm_failures(storm: &[FaultStormRun]) {
    for r in storm.iter().filter(|r| !r.agree) {
        eprintln!(
            "  DISAGREE {} {} kind={} batch={} interval={}",
            r.workload, r.query, r.kind, r.batch, r.interval
        );
    }
}

fn tcp_probe(
    w: &Workload,
    query: &'static str,
    batches: usize,
    scale: &ExpScale,
) -> Option<TcpProbe> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").ok()?;
    let addr = listener.local_addr().ok()?;
    std::thread::spawn(move || serve_shard(listener));
    let pool = Arc::new(TcpShardPool::connect(&[addr, addr]).ok()?);
    pool.ping().ok()?;

    let (base_reports, _) = run_with(w, query, batches, scale, None);
    let (reports, ms) = run_with(
        w,
        query,
        batches,
        scale,
        Some(Arc::clone(&pool) as Arc<dyn ShardExec>),
    );
    let workers = pool.worker_stats();
    Some(TcpProbe {
        shards: pool.shards(),
        identical: run_canon(&reports) == run_canon(&base_reports),
        bytes_shipped: pool.bytes_shipped(),
        elapsed_ms: ms,
        worker_folds: workers.iter().map(|w| w.folds).sum(),
        worker_acked: workers.iter().map(|w| w.acked).sum(),
        worker_response_bytes: workers.iter().map(|w| w.response_bytes).sum(),
    })
}
