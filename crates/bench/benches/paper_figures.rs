//! Criterion benches covering the code path of every paper figure at
//! reduced scale (`ExpScale::bench`), so `cargo bench --workspace`
//! exercises each experiment. The `experiments` binary produces the
//! full-scale rows recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iolap_bench::{conviva_workload, total_latency, tpch_workload, ExpScale, Workload};
use iolap_core::IolapConfig;
use std::time::Duration;

fn scale() -> ExpScale {
    ExpScale::bench()
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g
}

/// Fig 7(a): time-to-first-estimate and full incremental run for C8.
fn fig7a_c8(c: &mut Criterion) {
    let s = scale();
    let w = conviva_workload(&s);
    let q = w.queries.iter().find(|q| q.id == "C8").unwrap().clone();
    let mut g = quick(c);
    g.bench_function("fig7a/C8_baseline", |b| {
        b.iter(|| w.run_baseline(&q).elapsed)
    });
    g.bench_function("fig7a/C8_iolap_full", |b| {
        b.iter(|| total_latency(&w.run_iolap(&q, s.config())))
    });
    g.finish();
}

/// Fig 7(b)/(c): baseline vs iOLAP on a representative query per workload.
fn fig7bc_latencies(c: &mut Criterion) {
    let s = scale();
    let mut g = quick(c);
    for (w, id) in [
        (tpch_workload(&s), "Q1"),
        (tpch_workload(&s), "Q17"),
        (conviva_workload(&s), "C3"),
        (conviva_workload(&s), "SBI"),
    ] {
        let q = w.queries.iter().find(|q| q.id == id).unwrap().clone();
        g.bench_with_input(
            BenchmarkId::new("fig7bc/baseline", id),
            &(&w, &q),
            |b, (w, q)| b.iter(|| w.run_baseline(q).elapsed),
        );
        g.bench_with_input(
            BenchmarkId::new("fig7bc/iolap", id),
            &(&w, &q),
            |b, (w, q)| b.iter(|| total_latency(&w.run_iolap(q, s.config()))),
        );
    }
    g.finish();
}

/// Fig 8: iOLAP vs HDA delta processing on flat and nested queries.
fn fig8_delta(c: &mut Criterion) {
    let s = scale();
    let w = conviva_workload(&s);
    let mut g = quick(c);
    for id in ["C3", "SBI", "C2"] {
        let q = w.queries.iter().find(|q| q.id == id).unwrap().clone();
        g.bench_with_input(BenchmarkId::new("fig8/iolap", id), &q, |b, q| {
            b.iter(|| total_latency(&w.run_iolap(q, s.config())))
        });
        g.bench_with_input(BenchmarkId::new("fig8/hda", id), &q, |b, q| {
            b.iter(|| total_latency(&w.run_hda(q, s.config())))
        });
    }
    g.finish();
}

/// Fig 9(a): ablation ladder on C2.
fn fig9a_ablation(c: &mut Criterion) {
    let s = scale();
    let w = conviva_workload(&s);
    let q = w.queries.iter().find(|q| q.id == "C2").unwrap().clone();
    let mut g = quick(c);
    for (label, opt1, opt2) in [
        ("opt1+opt2", true, true),
        ("opt1_only", true, false),
        ("none", false, false),
    ] {
        g.bench_with_input(BenchmarkId::new("fig9a", label), &q, |b, q| {
            b.iter(|| total_latency(&w.run_iolap(q, s.config().optimizations(opt1, opt2))))
        });
    }
    g.finish();
}

/// Fig 9(d,e) / 10(e,f): slack sweep on SBI.
fn fig9de_slack(c: &mut Criterion) {
    let s = scale();
    let w = conviva_workload(&s);
    let q = w.queries.iter().find(|q| q.id == "SBI").unwrap().clone();
    let mut g = quick(c);
    for slack in [0.0_f64, 1.0, 2.0] {
        g.bench_with_input(
            BenchmarkId::new("fig9de/slack", format!("{slack}")),
            &q,
            |b, q| {
                b.iter(|| {
                    total_latency(&w.run_iolap(
                        q,
                        IolapConfig {
                            slack,
                            ..s.config()
                        },
                    ))
                })
            },
        );
    }
    g.finish();
}

/// Fig 9(f,g): batch-size sweep on C3.
fn fig9fg_batch_size(c: &mut Criterion) {
    let s = scale();
    let w = conviva_workload(&s);
    let q = w.queries.iter().find(|q| q.id == "C3").unwrap().clone();
    let mut g = quick(c);
    for batches in [4usize, 8, 16] {
        g.bench_with_input(BenchmarkId::new("fig9fg/batches", batches), &q, |b, q| {
            b.iter(|| {
                total_latency(&w.run_iolap(
                    q,
                    IolapConfig {
                        num_batches: batches,
                        ..s.config()
                    },
                ))
            })
        });
    }
    g.finish();
}

fn run_one(w: &Workload, id: &str, cfg: IolapConfig) -> Duration {
    let q = w.queries.iter().find(|q| q.id == id).unwrap().clone();
    total_latency(&w.run_iolap(&q, cfg))
}

/// Fig 10: TPC-H nested queries, iOLAP vs HDA.
fn fig10_tpch_nested(c: &mut Criterion) {
    let s = scale();
    let w = tpch_workload(&s);
    let mut g = quick(c);
    g.bench_function("fig10/Q17_iolap", |b| {
        b.iter(|| run_one(&w, "Q17", s.config()))
    });
    let q17 = w.queries.iter().find(|q| q.id == "Q17").unwrap().clone();
    g.bench_function("fig10/Q17_hda", |b| {
        b.iter(|| total_latency(&w.run_hda(&q17, s.config())))
    });
    g.finish();
}

criterion_group!(
    figures,
    fig7a_c8,
    fig7bc_latencies,
    fig8_delta,
    fig9a_ablation,
    fig9de_slack,
    fig9fg_batch_size,
    fig10_tpch_nested
);
criterion_main!(figures);
