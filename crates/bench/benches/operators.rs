//! Micro-benchmarks of the substrate operators: batch executor primitives,
//! Poisson bootstrap draws, variation-range tracking, and predicate
//! classification — the building blocks whose costs compose into the
//! figure-level numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use iolap_bootstrap::{poisson1, RangeTracker, VariationRange};
use iolap_core::{classify, AggRegistry};
use iolap_engine::{execute, plan_sql, CmpOp, Expr, FunctionRegistry};
use iolap_relation::{AggRef, Row, Value};
use iolap_workloads::conviva_catalog;
use std::sync::Arc;
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("operators");
    g.sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g
}

fn bench_poisson(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("poisson1_draws_1k", |b| {
        let mut acc = 0u32;
        b.iter(|| {
            for i in 0..1000u64 {
                acc = acc.wrapping_add(poisson1(42, i, 7));
            }
            acc
        })
    });
    g.finish();
}

fn bench_range_tracker(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("range_tracker_observe_100", |b| {
        let trials: Vec<f64> = (0..100).map(|i| 30.0 + (i % 7) as f64).collect();
        b.iter(|| {
            let mut t = RangeTracker::new(2.0);
            for _ in 0..20 {
                t.observe(&trials);
            }
            t.current().copied()
        })
    });
    g.finish();
}

fn bench_classify(c: &mut Criterion) {
    let mut reg = AggRegistry::new();
    let key: Arc<[Value]> = Arc::from(Vec::<Value>::new());
    reg.publish(
        0,
        key.clone(),
        vec![Value::Float(35.0)],
        vec![Arc::from(
            (0..100).map(|i| 30.0 + (i % 10) as f64).collect::<Vec<_>>(),
        )],
        2.0,
    );
    let pred = Expr::Cmp {
        op: CmpOp::Gt,
        left: Box::new(Expr::Col(0)),
        right: Box::new(Expr::Col(1)),
    };
    let rows: Vec<Row> = (0..1000)
        .map(|i| Row {
            values: vec![
                Value::Float((i % 70) as f64),
                Value::Ref(AggRef {
                    agg: 0,
                    column: 0,
                    key: key.clone(),
                }),
            ]
            .into(),
            mult: 1.0,
        })
        .collect();
    let mut g = quick(c);
    g.bench_function("classify_1k_rows", |b| {
        b.iter(|| {
            rows.iter()
                .map(|r| classify(&pred, r, &reg) as u8 as u32)
                .sum::<u32>()
        })
    });
    g.finish();
}

fn bench_batch_executor(c: &mut Criterion) {
    let cat = conviva_catalog(2000, 5);
    let regf = FunctionRegistry::with_builtins();
    let pq = plan_sql(
        "SELECT cdn, AVG(play_time), COUNT(*) FROM sessions GROUP BY cdn",
        &cat,
        &regf,
    )
    .unwrap();
    let mut g = quick(c);
    g.bench_function("batch_group_by_2k_rows", |b| {
        b.iter(|| execute(&pq.plan, &cat).unwrap().len())
    });
    let pq2 = plan_sql(
        "SELECT AVG(play_time) FROM sessions \
         WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
        &cat,
        &regf,
    )
    .unwrap();
    g.bench_function("batch_sbi_2k_rows", |b| {
        b.iter(|| execute(&pq2.plan, &cat).unwrap().len())
    });
    g.finish();
}

fn bench_interval_width(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("variation_range_from_trials_100", |b| {
        let trials: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 50.0).collect();
        b.iter(|| VariationRange::from_trials(&trials, 2.0))
    });
    g.finish();
}

criterion_group!(
    ops,
    bench_poisson,
    bench_range_tracker,
    bench_classify,
    bench_batch_executor,
    bench_interval_width
);
criterion_main!(ops);
