//! Call-graph extraction over the lexed token stream.
//!
//! This is deliberately *name-based*: a call site `foo(` resolves to every
//! repo function named `foo`. That over-approximates dispatch (method calls
//! on different types with the same name merge), which is exactly the safe
//! direction for reachability-style lints — L008 may report a panic that is
//! not truly reachable, never the reverse. Names dominated by std traits
//! (`clone`, `next`, `fmt`, …) are skipped to keep the over-approximation
//! useful; the skip list is documented on [`SKIP_NAMES`].
//!
//! Per function we record three event kinds, in source order:
//! panic sites (`.unwrap(` / `.expect(` plus the panic-family macros),
//! lock acquisitions (`.lock(`), and call sites. Lock events also carry
//! the scope depth and guard bindings the lock-order analysis needs.

use crate::lexer::{self, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::{Path, PathBuf};

/// A function definition extracted from one source file.
#[derive(Debug)]
pub struct FnDef {
    /// Repo-relative path of the defining file.
    pub file: String,
    /// Function name (unqualified).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Events inside the body, in source order.
    pub events: Vec<Event>,
}

/// One interesting site inside a function body.
#[derive(Debug)]
pub enum Event {
    /// A call site: `name(` or `name!(`.
    Call {
        /// Callee name.
        name: String,
        /// Variable the result is bound to (`let g = lock(&s)` → `g`),
        /// when syntactically obvious. Lets the lock-order analysis track
        /// guards returned by guard-constructor helpers.
        guard: Option<String>,
        /// 1-based line.
        line: usize,
    },
    /// A site that can panic: `.unwrap(`, `.expect(`, `panic!`, …
    Panic {
        /// What the site looks like (`".unwrap()"`, `"panic!"`, …).
        what: String,
        /// 1-based line.
        line: usize,
    },
    /// A `.lock(` acquisition.
    Lock {
        /// Lock identity: the last identifier of the receiver chain
        /// (`self.shared.state.lock()` → `state`).
        name: String,
        /// Variable the guard is bound to (`let g = x.lock()…` → `g`),
        /// when the binding is syntactically obvious.
        guard: Option<String>,
        /// Brace depth at the site, relative to the fn body (body = 1).
        depth: usize,
        /// 1-based line.
        line: usize,
    },
    /// Scope open (`{`) / close (`}`) markers, so held-lock sets can be
    /// released when the guard's scope ends.
    Open,
    /// See [`Event::Open`].
    Close,
    /// An explicit `drop(guard)` releasing a named guard early.
    Drop {
        /// The dropped variable name.
        var: String,
    },
}

/// Rust keywords that look like call sites when followed by `(`.
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "async", "await",
];

/// Call names never resolved to repo definitions: std-trait methods and
/// ubiquitous std constructors whose repo-local namesakes would otherwise
/// swallow the whole graph. `push` is deliberately *not* here — the repo's
/// `SelVec::push` sits on the columnar hot path and must stay visible.
pub const SKIP_NAMES: &[&str] = &[
    "clone",
    "fmt",
    "next",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "from",
    "into",
    "try_from",
    "try_into",
    "deref",
    "deref_mut",
    "drop",
    "as_ref",
    "as_mut",
    "to_string",
    "to_owned",
    "borrow",
    "borrow_mut",
    "new",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "extend",
    "clear",
    "index",
    "index_mut",
    "write",
    "read",
    "flush",
    "min",
    "max",
    "abs",
    "sqrt",
    "clamp",
    "serialize",
    "deserialize",
    "call",
    "build",
    "run",
    "id",
    "name",
    "kind",
    // Iterator adapters and atomics/str methods whose repo-local namesakes
    // (`modelcheck::enumerate`, `sql::parse`, checkpoint `load`) would
    // otherwise graft unrelated subsystems onto the hot-path call graph.
    "enumerate",
    "parse",
    "load",
    "store",
];

/// Panic-family macro names. Plain `assert!` is deliberately excluded:
/// invariant assertions are an accepted contract in this codebase, while
/// the four below are unconditional aborts.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Extract all production-code function definitions from one file.
pub fn extract_fns(rel_path: &str, src: &str) -> Vec<FnDef> {
    let tokens = lexer::lex(src);
    let tokens = lexer::production_prefix(&tokens);
    let mut defs = collect_defs(rel_path, tokens);
    attribute_events(tokens, &mut defs);
    defs.into_iter().map(|d| d.def).collect()
}

struct PendingDef {
    def: FnDef,
    /// Token index of the body's opening `{` (exclusive of the brace).
    body_start: usize,
    /// Token index one past the body's closing `}`.
    body_end: usize,
}

/// Find every `fn NAME … { … }` and its body token range. Signatures can
/// contain `(`/`[`-nested braces only inside closures in const generics,
/// which the repo does not use; the body is the first `{` at zero
/// paren/bracket depth after the name, or none when a `;` arrives first
/// (trait method declarations).
fn collect_defs(rel_path: &str, tokens: &[Token]) -> Vec<PendingDef> {
    let mut defs = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") && tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            let mut j = i + 2;
            let mut paren = 0i32;
            let body_start = loop {
                match tokens.get(j) {
                    None => break None,
                    Some(t) if t.is_punct('(') || t.is_punct('[') => paren += 1,
                    Some(t) if t.is_punct(')') || t.is_punct(']') => paren -= 1,
                    Some(t) if paren == 0 && t.is_punct('{') => break Some(j),
                    Some(t) if paren == 0 && t.is_punct(';') => break None,
                    _ => {}
                }
                j += 1;
            };
            if let Some(start) = body_start {
                let mut depth = 1i32;
                let mut k = start + 1;
                while k < tokens.len() && depth > 0 {
                    if tokens[k].is_punct('{') {
                        depth += 1;
                    } else if tokens[k].is_punct('}') {
                        depth -= 1;
                    }
                    k += 1;
                }
                defs.push(PendingDef {
                    def: FnDef {
                        file: rel_path.to_string(),
                        name,
                        line,
                        events: Vec::new(),
                    },
                    body_start: start + 1,
                    body_end: k.saturating_sub(1),
                });
                i = start + 1;
                continue;
            }
        }
        i += 1;
    }
    defs
}

/// Walk the token stream once and attribute each event to the innermost
/// enclosing function (fn bodies nest via closures and nested fns).
fn attribute_events(tokens: &[Token], defs: &mut [PendingDef]) {
    for idx in 0..defs.len() {
        let (start, end) = (defs[idx].body_start, defs[idx].body_end);
        // Innermost = no other def's body range strictly inside covers i.
        let inner: Vec<(usize, usize)> = defs
            .iter()
            .map(|d| (d.body_start, d.body_end))
            .filter(|&(s, e)| s > start && e <= end && !(s == start && e == end))
            .collect();
        let covered = |i: usize| inner.iter().any(|&(s, e)| i >= s && i < e);
        let mut depth = 1usize;
        let mut i = start;
        while i < end {
            if covered(i) {
                i += 1;
                continue;
            }
            let t = &tokens[i];
            if t.is_punct('{') {
                depth += 1;
                defs[idx].def.events.push(Event::Open);
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                defs[idx].def.events.push(Event::Close);
            } else if t.kind == TokKind::Ident {
                if let Some(ev) = classify_ident(tokens, i, depth, end) {
                    defs[idx].def.events.push(ev);
                }
            }
            i += 1;
        }
    }
}

fn classify_ident(tokens: &[Token], i: usize, depth: usize, end: usize) -> Option<Event> {
    let t = &tokens[i];
    let next = tokens.get(i + 1).filter(|_| i + 1 < end);
    let prev_dot = i > 0 && tokens[i - 1].is_punct('.');
    match next {
        Some(n) if n.is_punct('(') => {
            if prev_dot && (t.text == "unwrap" || t.text == "expect") {
                return Some(Event::Panic {
                    what: format!(".{}()", t.text),
                    line: t.line,
                });
            }
            if prev_dot && t.text == "lock" {
                // Receiver chain: walk idents/dots leftwards; skip when the
                // receiver is a call result `( … ).lock()` — identity unknown.
                if i >= 2 && tokens[i - 2].kind == TokKind::Ident {
                    let name = tokens[i - 2].text.clone();
                    return Some(Event::Lock {
                        name,
                        guard: guard_binding(tokens, i),
                        depth,
                        line: t.line,
                    });
                }
                return None;
            }
            if t.text == "drop" && !prev_dot {
                if let Some(v) = tokens.get(i + 2).filter(|v| v.kind == TokKind::Ident) {
                    if tokens.get(i + 3).is_some_and(|c| c.is_punct(')')) {
                        return Some(Event::Drop {
                            var: v.text.clone(),
                        });
                    }
                }
            }
            if KEYWORDS.contains(&t.text.as_str()) {
                return None;
            }
            Some(Event::Call {
                name: t.text.clone(),
                guard: guard_binding(tokens, i),
                line: t.line,
            })
        }
        Some(n) if n.is_punct('!') && tokens.get(i + 2).is_some_and(|p| p.is_punct('(')) => {
            if PANIC_MACROS.contains(&t.text.as_str()) {
                return Some(Event::Panic {
                    what: format!("{}!", t.text),
                    line: t.line,
                });
            }
            None
        }
        _ => None,
    }
}

/// For a `.lock()` at token index `i` (the `lock` ident), find the guard
/// variable when the statement is `let [mut] NAME = chain.lock()…`.
fn guard_binding(tokens: &[Token], i: usize) -> Option<String> {
    // Scan backwards across the receiver chain / path to the statement head.
    let mut j = i;
    while j >= 2
        && (tokens[j - 1].is_punct('.')
            || tokens[j - 1].is_punct(':')
            || tokens[j - 1].kind == TokKind::Ident)
    {
        j -= 1;
    }
    // Optional `&`/`*` prefixes.
    while j >= 1 && (tokens[j - 1].is_punct('&') || tokens[j - 1].is_punct('*')) {
        j -= 1;
    }
    if j >= 2 && tokens[j - 1].is_punct('=') {
        let mut k = j - 1;
        if k >= 1 && tokens[k - 1].is_ident("mut") {
            k -= 1;
        }
        if k >= 2 && tokens[k - 2].is_ident("let") && tokens[k - 1].kind == TokKind::Ident {
            return Some(tokens[k - 1].text.clone());
        }
        if k >= 3
            && tokens[k - 3].is_ident("let")
            && tokens[k - 2].is_ident("mut")
            && tokens[k - 1].kind == TokKind::Ident
        {
            return Some(tokens[k - 1].text.clone());
        }
    }
    None
}

/// The whole-repo call graph: every production fn in `crates/*/src/**`.
pub struct CallGraph {
    /// All function definitions, indexed densely.
    pub fns: Vec<FnDef>,
    /// name → indices of fns with that name.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

/// A panic site reachable from a root, with the call chain that reaches it.
#[derive(Debug)]
pub struct ReachablePanic {
    /// File of the panic site.
    pub file: String,
    /// 1-based line of the panic site.
    pub line: usize,
    /// The site (`".unwrap()"`, `"panic!"`, …).
    pub what: String,
    /// Human-readable chain `root -> … -> fn` that reaches the site.
    pub chain: String,
}

impl CallGraph {
    /// Build the graph from `(rel_path, source)` pairs.
    pub fn build(files: &[(String, String)]) -> CallGraph {
        let mut fns = Vec::new();
        for (path, src) in files {
            fns.extend(extract_fns(path, src));
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        CallGraph { fns, by_name }
    }

    /// Build from the repo on disk: all `crates/*/src/**/*.rs` files
    /// (excluding `tests/` directories and anything under `target/`).
    pub fn build_from_repo(repo_root: &Path) -> std::io::Result<CallGraph> {
        let files = collect_prod_sources(repo_root)?;
        Ok(Self::build(&files))
    }

    /// Indices of fns named `name` defined in a file whose path ends with
    /// `file_suffix`.
    pub fn find(&self, file_suffix: &str, name: &str) -> Vec<usize> {
        self.by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&i| self.fns[i].file.ends_with(file_suffix))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Callee fn indices of fn `i`, applying the skip list and resolving
    /// by name across the whole repo.
    pub fn callees(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for ev in &self.fns[i].events {
            if let Event::Call { name, .. } = ev {
                if SKIP_NAMES.contains(&name.as_str()) {
                    continue;
                }
                if let Some(targets) = self.by_name.get(name) {
                    out.extend(targets.iter().copied());
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// BFS from `roots`, returning every panic site inside a reachable fn
    /// with its (shortest-hop) call chain. `exempt_file_suffix` names files
    /// whose panic *sites* are ignored (deliberate fault injection whose
    /// panics are contained by `catch_unwind`); their calls still traverse.
    pub fn reachable_panics(
        &self,
        roots: &[usize],
        exempt_file_suffix: &[&str],
    ) -> Vec<ReachablePanic> {
        let mut pred: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue = VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = pred.entry(r) {
                e.insert(None);
                queue.push_back(r);
            }
        }
        let mut order = Vec::new();
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for c in self.callees(i) {
                if let std::collections::btree_map::Entry::Vacant(e) = pred.entry(c) {
                    e.insert(Some(i));
                    queue.push_back(c);
                }
            }
        }
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        for &i in &order {
            let f = &self.fns[i];
            if exempt_file_suffix.iter().any(|s| f.file.ends_with(s)) {
                continue;
            }
            for ev in &f.events {
                if let Event::Panic { what, line } = ev {
                    if !seen.insert((f.file.clone(), *line, what.clone())) {
                        continue;
                    }
                    out.push(ReachablePanic {
                        file: f.file.clone(),
                        line: *line,
                        what: what.clone(),
                        chain: self.chain_to(&pred, i),
                    });
                }
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out
    }

    fn chain_to(&self, pred: &BTreeMap<usize, Option<usize>>, mut i: usize) -> String {
        let mut names = vec![self.fns[i].name.clone()];
        while let Some(Some(p)) = pred.get(&i) {
            names.push(self.fns[*p].name.clone());
            i = *p;
        }
        names.reverse();
        names.join(" -> ")
    }
}

/// Collect `(rel_path, contents)` for every production source file under
/// `crates/*/src/`, sorted by path for determinism.
pub fn collect_prod_sources(repo_root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let crates_dir = repo_root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk(&src, repo_root, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, repo_root: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk(&p, repo_root, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(repo_root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, std::fs::read_to_string(&p)?));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_fns_and_calls() {
        let src = "fn a() { b(); c.unwrap(); }\nfn b() { panic!(\"boom\"); }\n";
        let defs = extract_fns("crates/x/src/lib.rs", src);
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0].name, "a");
        let calls: Vec<_> = defs[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(calls, ["b"]);
        assert!(defs[0]
            .events
            .iter()
            .any(|e| matches!(e, Event::Panic { what, .. } if what == ".unwrap()")));
        assert!(defs[1]
            .events
            .iter()
            .any(|e| matches!(e, Event::Panic { what, .. } if what == "panic!")));
    }

    #[test]
    fn panic_three_calls_deep_is_reachable() {
        let files = vec![(
            "crates/x/src/lib.rs".to_string(),
            "fn root() { mid(); }\nfn mid() { deep(); }\nfn deep() { helper_val.unwrap(); }\n"
                .to_string(),
        )];
        let g = CallGraph::build(&files);
        let roots = g.find("lib.rs", "root");
        let panics = g.reachable_panics(&roots, &[]);
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].chain, "root -> mid -> deep");
        assert_eq!(panics[0].line, 3);
    }

    #[test]
    fn unreachable_panics_are_not_reported() {
        let files = vec![(
            "crates/x/src/lib.rs".to_string(),
            "fn root() { safe(); }\nfn safe() {}\nfn island() { x.unwrap(); }\n".to_string(),
        )];
        let g = CallGraph::build(&files);
        let roots = g.find("lib.rs", "root");
        assert!(g.reachable_panics(&roots, &[]).is_empty());
    }

    #[test]
    fn exempt_files_traverse_but_do_not_report() {
        let files = vec![
            (
                "crates/x/src/lib.rs".to_string(),
                "fn root() { inject(); }\n".to_string(),
            ),
            (
                "crates/x/src/faults.rs".to_string(),
                "fn inject() { deeper(); panic!(\"fault\"); }\nfn deeper() { v.unwrap(); }\n"
                    .to_string(),
            ),
        ];
        let g = CallGraph::build(&files);
        let roots = g.find("lib.rs", "root");
        let panics = g.reachable_panics(&roots, &["faults.rs"]);
        assert!(panics.is_empty(), "both sites live in the exempt file");
    }

    #[test]
    fn lock_sites_record_identity_and_guard() {
        let src = "fn f(&self) { let mut st = self.shared.state.lock().unwrap(); drop(st); }\n";
        let defs = extract_fns("crates/server/src/x.rs", src);
        let lock = defs[0]
            .events
            .iter()
            .find_map(|e| match e {
                Event::Lock { name, guard, .. } => Some((name.clone(), guard.clone())),
                _ => None,
            })
            .unwrap();
        assert_eq!(lock.0, "state");
        assert_eq!(lock.1.as_deref(), Some("st"));
        assert!(defs[0]
            .events
            .iter()
            .any(|e| matches!(e, Event::Drop { var } if var == "st")));
    }
}
