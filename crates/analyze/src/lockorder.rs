//! L009: static lock-order deadlock detection for `crates/server`.
//!
//! Lock identity is the last identifier of the receiver chain before
//! `.lock(` (`self.shared.state.lock()` → `state`): all server mutexes are
//! distinct fields, so the field name is the lock. Per function we replay
//! the [`crate::callgraph::Event`] stream with a scope stack — a guard
//! acquired inside `{ … }` is released at the matching `}`, and an explicit
//! `drop(guard)` releases it early. At each acquisition and call we know
//! the set of held locks:
//!
//! * acquiring `L` while `L` is already held (directly or via a callee
//!   that acquires `L` transitively) is an immediate self-deadlock finding;
//! * otherwise each held×acquired pair adds a directed edge `held → acq`
//!   to the lock-order graph, and any cycle in that graph is a finding
//!   (two threads taking the locks in opposite orders can deadlock).
//!
//! Callee lock sets are the transitive fixpoint `acq*` over the call
//! graph, so `f() { a.lock(); g() }` with `g() { b.lock() }` contributes
//! the edge `a → b` even though the acquisitions are two functions apart.

use crate::callgraph::{CallGraph, Event, SKIP_NAMES};
use std::collections::{BTreeMap, BTreeSet};

/// One lock-order finding.
#[derive(Debug)]
pub struct LockFinding {
    /// File of the offending acquisition (or cycle witness).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// The lock-order graph plus findings for one analysis run.
pub struct LockOrder {
    /// Directed edges `held → acquired`, each with one witness site.
    pub edges: BTreeMap<(String, String), (String, usize)>,
    /// Self-deadlock and cycle findings.
    pub findings: Vec<LockFinding>,
}

/// Analyze lock ordering over the functions of `graph` whose file path
/// contains `scope` (e.g. `"crates/server/"`). Call resolution still spans
/// the whole graph so helpers outside the scope propagate their locks.
pub fn analyze(graph: &CallGraph, scope: &str) -> LockOrder {
    let transitive = transitive_acquires(graph);
    let ctors: Vec<Option<String>> = (0..graph.fns.len()).map(|i| guard_ctor(graph, i)).collect();
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    let mut findings = Vec::new();

    for f in graph.fns.iter() {
        if !f.file.contains(scope) {
            continue;
        }
        // Scope stack: locks acquired per open scope, released on close.
        let mut scopes: Vec<Vec<(String, Option<String>)>> = vec![Vec::new()];
        let held = |scopes: &[Vec<(String, Option<String>)>]| -> Vec<String> {
            scopes.iter().flatten().map(|(l, _)| l.clone()).collect()
        };
        for ev in &f.events {
            match ev {
                Event::Open => scopes.push(Vec::new()),
                Event::Close => {
                    scopes.pop();
                    if scopes.is_empty() {
                        scopes.push(Vec::new());
                    }
                }
                Event::Drop { var } => {
                    for frame in scopes.iter_mut() {
                        frame.retain(|(_, g)| g.as_deref() != Some(var.as_str()));
                    }
                }
                Event::Lock {
                    name, guard, line, ..
                } => {
                    acquire(
                        &mut scopes,
                        &mut edges,
                        &mut findings,
                        &f.file,
                        &f.name,
                        name,
                        guard.as_deref(),
                        *line,
                    );
                }
                Event::Call { name, guard, line } => {
                    if SKIP_NAMES.contains(&name.as_str()) {
                        continue;
                    }
                    let targets = graph.by_name.get(name);
                    // A call to a guard-constructor helper (a fn whose sole
                    // effect is one `.lock(` returned to the caller) is an
                    // acquisition by the *caller*: the guard lives here.
                    let ctor_lock = targets.and_then(|ts| {
                        let names: BTreeSet<&String> =
                            ts.iter().filter_map(|&t| ctors[t].as_ref()).collect();
                        (names.len() == 1 && ts.iter().all(|&t| ctors[t].is_some()))
                            .then(|| (*names.first().unwrap()).clone())
                    });
                    if let Some(l) = ctor_lock {
                        acquire(
                            &mut scopes,
                            &mut edges,
                            &mut findings,
                            &f.file,
                            &f.name,
                            &l,
                            guard.as_deref(),
                            *line,
                        );
                        // An unbound ctor call is a temporary guard dropped
                        // at end of statement; model that as release-now.
                        if guard.is_none() {
                            if let Some(frame) = scopes.last_mut() {
                                frame.pop();
                            }
                        }
                        continue;
                    }
                    let h = held(&scopes);
                    if h.is_empty() {
                        continue;
                    }
                    let mut callee_locks: BTreeSet<&String> = BTreeSet::new();
                    if let Some(targets) = targets {
                        for &t in targets {
                            callee_locks.extend(&transitive[t]);
                        }
                    }
                    for acq in callee_locks {
                        if h.iter().any(|l| l == acq) {
                            findings.push(LockFinding {
                                file: f.file.clone(),
                                line: *line,
                                message: format!(
                                    "fn {} calls {}() which acquires `{}` while `{}` is held",
                                    f.name, name, acq, acq
                                ),
                            });
                        } else {
                            for l in &h {
                                edges
                                    .entry((l.clone(), acq.clone()))
                                    .or_insert_with(|| (f.file.clone(), *line));
                            }
                        }
                    }
                }
                Event::Panic { .. } => {}
            }
        }
    }

    // Cycle detection over the lock-order digraph.
    if let Some(cycle) = find_cycle(&edges) {
        let witness = edges
            .get(&(cycle[0].clone(), cycle[1].clone()))
            .cloned()
            .unwrap_or_else(|| ("crates/server".to_string(), 0));
        findings.push(LockFinding {
            file: witness.0,
            line: witness.1,
            message: format!("lock-order cycle: {}", cycle.join(" -> ")),
        });
    }

    findings.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    LockOrder { edges, findings }
}

/// Record one acquisition of `lock` in fn `fn_name`: double-lock finding
/// when already held, `held → lock` edges otherwise, then push the guard
/// onto the innermost scope.
#[allow(clippy::too_many_arguments)]
fn acquire(
    scopes: &mut [Vec<(String, Option<String>)>],
    edges: &mut BTreeMap<(String, String), (String, usize)>,
    findings: &mut Vec<LockFinding>,
    file: &str,
    fn_name: &str,
    lock: &str,
    guard: Option<&str>,
    line: usize,
) {
    let held: Vec<String> = scopes.iter().flatten().map(|(l, _)| l.clone()).collect();
    if held.iter().any(|l| l == lock) {
        findings.push(LockFinding {
            file: file.to_string(),
            line,
            message: format!("fn {fn_name} re-acquires lock `{lock}` while already holding it"),
        });
    }
    for l in &held {
        if l != lock {
            edges
                .entry((l.clone(), lock.to_string()))
                .or_insert_with(|| (file.to_string(), line));
        }
    }
    scopes
        .last_mut()
        .expect("scope stack is never empty")
        .push((lock.to_string(), guard.map(str::to_string)));
}

/// `Some(lock)` when fn `i` is a guard constructor: its only effect is a
/// single `.lock(` whose guard escapes to the caller (no inner scopes, no
/// drops, no calls into other repo functions that could release it).
fn guard_ctor(graph: &CallGraph, i: usize) -> Option<String> {
    let mut lock = None;
    for ev in &graph.fns[i].events {
        match ev {
            Event::Lock { name, .. } => {
                if lock.is_some() {
                    return None;
                }
                lock = Some(name.clone());
            }
            Event::Open | Event::Close | Event::Drop { .. } => return None,
            Event::Call { name, .. } => {
                if graph.by_name.contains_key(name) && !SKIP_NAMES.contains(&name.as_str()) {
                    return None;
                }
            }
            Event::Panic { .. } => {}
        }
    }
    lock
}

/// For each fn: the set of lock names it acquires, directly or via any
/// (transitive) callee. Fixpoint over the call graph; cycles converge
/// because the sets only grow.
fn transitive_acquires(graph: &CallGraph) -> Vec<BTreeSet<String>> {
    let mut acq: Vec<BTreeSet<String>> = graph
        .fns
        .iter()
        .map(|f| {
            f.events
                .iter()
                .filter_map(|e| match e {
                    Event::Lock { name, .. } => Some(name.clone()),
                    _ => None,
                })
                .collect()
        })
        .collect();
    let callees: Vec<Vec<usize>> = (0..graph.fns.len()).map(|i| graph.callees(i)).collect();
    loop {
        let mut changed = false;
        for i in 0..acq.len() {
            for &c in &callees[i] {
                if c == i {
                    continue;
                }
                let add: Vec<String> = acq[c].difference(&acq[i]).cloned().collect();
                if !add.is_empty() {
                    acq[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            return acq;
        }
    }
}

/// DFS cycle search; returns the cycle as `[a, b, …, a]` when found.
fn find_cycle(edges: &BTreeMap<(String, String), (String, usize)>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut state: BTreeMap<&String, u8> = BTreeMap::new(); // 1 = on stack, 2 = done
    let mut stack: Vec<&String> = Vec::new();

    fn dfs<'a>(
        n: &'a String,
        adj: &BTreeMap<&'a String, Vec<&'a String>>,
        state: &mut BTreeMap<&'a String, u8>,
        stack: &mut Vec<&'a String>,
    ) -> Option<Vec<String>> {
        state.insert(n, 1);
        stack.push(n);
        for &m in adj.get(n).into_iter().flatten() {
            match state.get(m) {
                Some(1) => {
                    let pos = stack.iter().position(|x| *x == m).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[pos..].iter().map(|s| s.to_string()).collect();
                    cycle.push(m.clone());
                    return Some(cycle);
                }
                Some(2) => {}
                _ => {
                    if let Some(c) = dfs(m, adj, state, stack) {
                        return Some(c);
                    }
                }
            }
        }
        stack.pop();
        state.insert(n, 2);
        None
    }

    let nodes: Vec<&String> = adj.keys().copied().collect();
    for n in nodes {
        if !state.contains_key(n) {
            if let Some(c) = dfs(n, &adj, &mut state, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> LockOrder {
        let files = vec![("crates/server/src/fixture.rs".to_string(), src.to_string())];
        analyze(&CallGraph::build(&files), "crates/server/")
    }

    #[test]
    fn two_mutex_ordering_cycle_is_a_finding() {
        let order = run(
            "fn t1(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }\n\
             fn t2(&self) { let b = self.beta.lock().unwrap(); let a = self.alpha.lock().unwrap(); }\n",
        );
        assert!(
            order
                .findings
                .iter()
                .any(|f| f.message.contains("lock-order cycle")),
            "findings: {:?}",
            order.findings
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let order = run(
            "fn t1(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }\n\
             fn t2(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }\n",
        );
        assert!(order.findings.is_empty(), "findings: {:?}", order.findings);
        assert_eq!(order.edges.len(), 1);
    }

    #[test]
    fn scoped_guard_releases_at_close() {
        // shutdown() pattern: state locked in an inner scope, workers after.
        let order = run(
            "fn shutdown(&self) { { let mut st = self.state.lock().unwrap(); st.x = 1; } let w = self.workers.lock().unwrap(); }\n\
             fn other(&self) { let w = self.workers.lock().unwrap(); let st = self.state.lock().unwrap(); }\n",
        );
        assert!(order.findings.is_empty(), "findings: {:?}", order.findings);
    }

    #[test]
    fn explicit_drop_releases_early() {
        let order = run(
            "fn f(&self) { let st = self.state.lock().unwrap(); drop(st); let w = self.workers.lock().unwrap(); }\n\
             fn g(&self) { let w = self.workers.lock().unwrap(); let st = self.state.lock().unwrap(); }\n",
        );
        assert!(order.findings.is_empty(), "findings: {:?}", order.findings);
    }

    #[test]
    fn double_lock_is_a_finding() {
        let order = run("fn f(&self) { let a = self.state.lock().unwrap(); let b = self.state.lock().unwrap(); }\n");
        assert!(order
            .findings
            .iter()
            .any(|f| f.message.contains("re-acquires")));
    }

    #[test]
    fn transitive_lock_through_helper_is_seen() {
        let order = run(
            "fn outer(&self) { let w = self.workers.lock().unwrap(); helper_lock_state(self); }\n\
             fn helper_lock_state(&self) { let st = self.state.lock().unwrap(); }\n\
             fn elsewhere(&self) { let st = self.state.lock().unwrap(); let w = self.workers.lock().unwrap(); }\n",
        );
        assert!(
            order
                .findings
                .iter()
                .any(|f| f.message.contains("lock-order cycle")),
            "edges: {:?} findings: {:?}",
            order.edges,
            order.findings
        );
    }

    #[test]
    fn guard_constructor_helper_propagates_to_caller() {
        let order = run(
            "fn lock_state(&self) -> MutexGuard<'_, State> { self.shared.state.lock().unwrap_or_else(PoisonError::into_inner) }\n\
             fn a(&self) { let st = lock_state(self); let w = self.workers.lock().unwrap(); }\n\
             fn b(&self) { let w = self.workers.lock().unwrap(); let st = lock_state(self); }\n",
        );
        assert!(
            order
                .findings
                .iter()
                .any(|f| f.message.contains("lock-order cycle")),
            "edges: {:?} findings: {:?}",
            order.edges,
            order.findings
        );
    }

    #[test]
    fn calling_helper_that_relocks_held_lock_is_a_finding() {
        let order = run(
            "fn outer(&self) { let st = self.state.lock().unwrap(); helper_lock_state(self); }\n\
             fn helper_lock_state(&self) { let g = self.state.lock().unwrap(); if g.busy { g.bump(); } }\n",
        );
        assert!(order
            .findings
            .iter()
            .any(|f| f.message.contains("acquires `state` while `state` is held")));
    }
}
