//! A hand-rolled, zero-dependency Rust token lexer for the source lints.
//!
//! The textual lints (L001–L007) and the interprocedural analyses (call
//! graph, lock-order) all consume this token stream instead of raw line
//! substrings, which is what makes them blind to comments and string
//! literals *by construction*:
//!
//! * `//` line comments (incl. `///` and `//!` doc comments) are skipped;
//! * `/* … */` block comments are skipped, including **nested** blocks;
//! * `"…"` strings, `r"…"` / `r#"…"#` raw strings (any `#` depth), `b"…"`
//!   byte strings, and `br#"…"#` raw byte strings become single `Literal`
//!   tokens — their contents never produce `Ident`/`Punct` tokens;
//! * `'a'` char literals (incl. escapes and `b'a'` byte chars) are
//!   `Literal`s, while `'a` lifetimes are `Lifetime` tokens — the
//!   disambiguation looks one character past the opening quote;
//! * `r#ident` raw identifiers lex as the bare identifier.
//!
//! Every token carries its 1-based source line, so findings point at real
//! code. Multi-character operators are emitted as single-character `Punct`
//! tokens (`::` is two `:` tokens); the consumers only ever match short
//! token patterns, where this keeps the matcher trivial.
//!
//! The repo convention keeps `#[cfg(test)]` modules last in a file;
//! [`production_prefix`] truncates a token stream at the first such
//! attribute so test code is never linted.

/// Kind of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `state`, `unwrap`, …).
    Ident,
    /// Single punctuation character (`.`, `(`, `!`, `:`, …).
    Punct,
    /// String / char / byte / numeric literal, as one opaque token.
    Literal,
    /// Lifetime (`'a`, `'_`, `'static`), without the quote.
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Token text. Identifiers carry the name (raw identifiers without the
    /// `r#`), puncts the single character, literals their raw source slice.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True for a punct token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lex `src` into tokens. Never fails: unterminated literals or comments
/// simply consume to end of input (the lints degrade gracefully on
/// malformed source; rustc owns rejecting it).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

/// The production prefix of a token stream: everything before the first
/// `#[cfg(test)]` attribute (the repo convention keeps test modules last in
/// a file, so the remainder is test-only code).
pub fn production_prefix(tokens: &[Token]) -> &[Token] {
    for (i, w) in tokens.windows(7).enumerate() {
        if w[0].is_punct('#')
            && w[1].is_punct('[')
            && w[2].is_ident("cfg")
            && w[3].is_punct('(')
            && w[4].is_ident("test")
            && w[5].is_punct(')')
            && w[6].is_punct(']')
        {
            return &tokens[..i];
        }
    }
    tokens
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek(0)?;
        if c == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.quote(),
                b'r' | b'b' if self.raw_or_byte() => {}
                c if is_ident_start(c) => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    let start = self.pos;
                    self.bump();
                    // Multi-byte (non-ASCII) characters become one punct.
                    while self.peek(0).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.bump();
                    }
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.out.push(Token {
                        kind: TokKind::Punct,
                        text,
                        line,
                    });
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.bump() {
            if c == b'\n' {
                break;
            }
        }
    }

    fn block_comment(&mut self) {
        // Past the opening `/*`; block comments nest in Rust.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return,
            }
        }
    }

    /// Cooked string starting at the current `"`; `start` is the literal's
    /// first byte (maybe a `b` prefix already consumed by the caller).
    fn string(&mut self, start: usize) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.push(Token {
            kind: TokKind::Literal,
            text,
            line,
        });
    }

    /// Raw string starting at the current `"` with `hashes` trailing `#`
    /// required to close; `start` is the literal's first byte.
    fn raw_string(&mut self, start: usize, hashes: usize) {
        let line = self.line;
        self.bump(); // opening quote
        'scan: while let Some(c) = self.bump() {
            if c == b'"' {
                for k in 0..hashes {
                    if self.peek(k) != Some(b'#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.push(Token {
            kind: TokKind::Literal,
            text,
            line,
        });
    }

    /// `'` — char literal or lifetime. A char literal either escapes
    /// (`'\n'`) or closes one character later (`'a'`, `'('`); anything else
    /// is a lifetime (`'a`, `'static`, `'_`).
    fn quote(&mut self) {
        let start = self.pos;
        let line = self.line;
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump(); // '
                self.bump(); // backslash
                self.bump(); // escaped char
                while let Some(c) = self.bump() {
                    if c == b'\'' {
                        break;
                    }
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.out.push(Token {
                    kind: TokKind::Literal,
                    text,
                    line,
                });
            }
            Some(c) if !is_ident_continue(c) || self.closes_as_char() => {
                // Plain char literal: `'x'` (x possibly multi-byte).
                self.bump(); // '
                while let Some(c) = self.bump() {
                    if c == b'\'' {
                        break;
                    }
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.out.push(Token {
                    kind: TokKind::Literal,
                    text,
                    line,
                });
            }
            _ => {
                // Lifetime: quote then identifier characters.
                self.bump(); // '
                let id_start = self.pos;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                let text = String::from_utf8_lossy(&self.src[id_start..self.pos]).into_owned();
                self.out.push(Token {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                });
            }
        }
    }

    /// At an opening `'` whose next char is an identifier char: true when
    /// the character after that is the closing `'` (i.e. `'a'`, a char
    /// literal, not the lifetime `'a`).
    fn closes_as_char(&self) -> bool {
        self.peek(2) == Some(b'\'')
    }

    /// Dispatch `r` / `b` prefixes: raw strings, raw identifiers, byte
    /// strings, byte chars. Returns false when the prefix is just the start
    /// of an ordinary identifier (caller falls through to `ident`).
    fn raw_or_byte(&mut self) -> bool {
        let start = self.pos;
        let c = self.peek(0).unwrap_or(0);
        if c == b'r' {
            // r"…" | r#"…"# | r#ident
            let mut k = 1;
            while self.peek(k) == Some(b'#') {
                k += 1;
            }
            let hashes = k - 1;
            match self.peek(k) {
                Some(b'"') => {
                    for _ in 0..k {
                        self.bump();
                    }
                    self.raw_string(start, hashes);
                    return true;
                }
                Some(h) if hashes == 1 && is_ident_start(h) => {
                    // Raw identifier: lex as the bare name.
                    self.bump(); // r
                    self.bump(); // #
                    self.ident();
                    return true;
                }
                _ => return false,
            }
        }
        // b"…" | br"…" | br#"…"# | b'…'
        let mut k = 1;
        if self.peek(k) == Some(b'r') {
            k += 1;
        }
        let mut hashes = 0;
        while self.peek(k + hashes) == Some(b'#') {
            hashes += 1;
        }
        match self.peek(k + hashes) {
            Some(b'"') if k == 2 || hashes == 0 => {
                for _ in 0..(k + hashes) {
                    self.bump();
                }
                if k == 2 {
                    self.raw_string(start, hashes);
                } else {
                    self.string(start);
                }
                true
            }
            Some(b'\'') if k == 1 && hashes == 0 => {
                self.bump(); // b
                self.quote_as_char(start);
                true
            }
            _ => false,
        }
    }

    /// Byte-char tail starting at the `'`; always a char-like literal
    /// (there are no byte lifetimes).
    fn quote_as_char(&mut self, start: usize) {
        let line = self.line;
        self.bump(); // '
        while let Some(c) = self.bump() {
            match c {
                b'\\' => {
                    self.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.push(Token {
            kind: TokKind::Literal,
            text,
            line,
        });
    }

    fn ident(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.push(Token {
            kind: TokKind::Ident,
            text,
            line,
        });
    }

    fn number(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        // Fractional part — only when followed by a digit, so `0..n` ranges
        // and `1.method()` calls keep their `.` as punctuation.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.push(Token {
            kind: TokKind::Literal,
            text,
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_produce_no_tokens() {
        assert!(lex("// x.unwrap()\n").is_empty());
        assert!(lex("/* x.unwrap() */").is_empty());
        assert!(lex("/* outer /* nested .unwrap() */ still comment */").is_empty());
        assert_eq!(idents("/// doc .unwrap()\nfn f() {}"), ["fn", "f"]);
    }

    #[test]
    fn strings_are_single_literals() {
        let toks = kinds("let s = \"a.unwrap() \\\" quoted\";");
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || (t != "unwrap" && t != "quoted")));
        let toks = kinds("let r = r#\"raw \" .unwrap() \"#;");
        assert!(!toks.iter().any(|(_, t)| t == "unwrap"));
        let toks = kinds("let b = b\"bytes .unwrap()\";");
        assert!(!toks.iter().any(|(_, t)| t == "unwrap"));
        let toks = kinds("let b = br#\"raw bytes .unwrap()\"#;");
        assert!(!toks.iter().any(|(_, t)| t == "unwrap"));
    }

    #[test]
    fn char_literals_versus_lifetimes() {
        let toks = lex("let c = 'a'; let q = '\\''; fn f<'a>(x: &'a str) -> &'static str {}");
        let lits: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert!(lits.contains(&"'a'"));
        assert!(lits.contains(&"'\\''"));
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a", "static"]);
    }

    #[test]
    fn raw_identifiers_lex_bare() {
        assert_eq!(idents("let r#fn = 1;"), ["let", "fn"]);
    }

    #[test]
    fn numbers_keep_range_dots() {
        let toks = kinds("for i in 0..10 { let x = 1.5; }");
        assert!(toks.contains(&(TokKind::Literal, "0".to_string())));
        assert!(toks.contains(&(TokKind::Literal, "1.5".to_string())));
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokKind::Punct && t == ".")
                .count(),
            2,
            "the range's two dots stay puncts"
        );
    }

    #[test]
    fn lines_are_tracked_through_multiline_literals() {
        let toks = lex("let a = \"one\nline two\";\nlet b = 1;");
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn production_prefix_stops_at_cfg_test() {
        let toks = lex("fn f() {}\n#[cfg(test)]\nmod t { fn g() { x.unwrap(); } }");
        let prod = production_prefix(&toks);
        assert!(!prod.iter().any(|t| t.is_ident("unwrap")));
        assert!(prod.iter().any(|t| t.is_ident("f")));
        // Non-test cfg attributes do not truncate.
        let toks = lex("#[cfg(feature = \"x\")]\nfn f() { a.unwrap(); }");
        assert!(production_prefix(&toks)
            .iter()
            .any(|t| t.is_ident("unwrap")));
    }
}
