//! Independent re-derivation of the §4.1 uncertainty tags over the
//! *rewritten* online operator tree.
//!
//! This is deliberately a second implementation of the paper's uncertainty
//! propagation: it shares no code with `iolap-core::annotate` (which runs on
//! the logical plan and *feeds* the rewriter). The verifier derives `(u#,
//! uA)` bottom-up from the online operators themselves and then cross-checks
//! everything the rewriter configured. A bug in the rewriter or annotator
//! therefore shows up as a tag disagreement instead of as silently wrong
//! delta updates.
//!
//! Transfer rules (§4.1):
//!
//! * **SCAN** — base-relation attributes are deterministic (`uA = F…F`);
//!   streamed scans introduce tuple uncertainty (`u# = T`) and one factor of
//!   `m_i` stream scaling.
//! * **SELECT** — `uA` passes through; `u# |=` (predicate reads uncertain
//!   attributes).
//! * **PROJECT** — output column uncertain iff its expression reads an
//!   uncertain input column; `u#` passes through.
//! * **JOIN** — concatenated `uA`; `u# = l ∨ r`; stream factors add.
//! * **SEMI-JOIN** — left `uA`; `u# = l ∨ r`; left stream factor.
//! * **UNION** — per-column OR; `u#` OR; max stream factor.
//! * **AGGREGATE** — group columns deterministic; each aggregate output
//!   uncertain iff input tuples are uncertain OR its argument reads
//!   uncertain attributes; `u#` follows the input (`u#(t) = ⋀ u'#(t')`);
//!   stream factor resets to 0 (scaling moves inside extensive outputs).

use iolap_core::ops::ProjMode;
use iolap_core::OnlineOp;
use iolap_engine::Expr;

/// Derived uncertainty tags for one operator's output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tags {
    /// Derived `uA` per output column.
    pub attr_uncertain: Vec<bool>,
    /// Derived `u#`: output tuples may have uncertain multiplicity.
    pub tuple_uncertain: bool,
    /// Subtree reads the streamed relation.
    pub reads_stream: bool,
    /// Streamed base-row factors multiplying into each output row (the
    /// power of `m_i` the sink must apply).
    pub stream_factor: u32,
}

/// True if `expr` references any column tagged uncertain in `attrs`.
pub fn expr_uncertain(expr: &Expr, attrs: &[bool]) -> bool {
    let mut cols = Vec::new();
    expr.referenced_columns(&mut cols);
    cols.iter().any(|&c| attrs.get(c).copied().unwrap_or(false))
}

/// Derive tags for `op`'s output, recursing into children. Independent of
/// anything the rewriter configured: only structural facts (scan streamed
/// flags, expressions, group columns) are consulted.
pub fn derive(op: &OnlineOp) -> Tags {
    match op {
        OnlineOp::Scan(s) => Tags {
            attr_uncertain: vec![false; s.schema.len()],
            tuple_uncertain: s.streamed,
            reads_stream: s.streamed,
            stream_factor: u32::from(s.streamed),
        },
        OnlineOp::Select(s) => {
            let child = derive(&s.child);
            let pred_uncertain = expr_uncertain(&s.predicate, &child.attr_uncertain);
            Tags {
                tuple_uncertain: child.tuple_uncertain || pred_uncertain,
                ..child
            }
        }
        OnlineOp::Project(p) => {
            let child = derive(&p.child);
            let attr_uncertain = p
                .modes
                .iter()
                .map(|m| match m {
                    ProjMode::Plain(e) => expr_uncertain(e, &child.attr_uncertain),
                    ProjMode::PassCell(i) => child.attr_uncertain.get(*i).copied().unwrap_or(false),
                    ProjMode::Thunk(e) => expr_uncertain(e.as_ref(), &child.attr_uncertain),
                })
                .collect();
            Tags {
                attr_uncertain,
                ..child
            }
        }
        OnlineOp::Join(j) => {
            let l = derive(&j.left);
            let r = derive(&j.right);
            let mut attr_uncertain = l.attr_uncertain;
            attr_uncertain.extend(r.attr_uncertain.iter().copied());
            Tags {
                attr_uncertain,
                tuple_uncertain: l.tuple_uncertain || r.tuple_uncertain,
                reads_stream: l.reads_stream || r.reads_stream,
                stream_factor: l.stream_factor + r.stream_factor,
            }
        }
        OnlineOp::SemiJoin(j) => {
            let l = derive(&j.left);
            let r = derive(&j.right);
            Tags {
                attr_uncertain: l.attr_uncertain,
                tuple_uncertain: l.tuple_uncertain || r.tuple_uncertain,
                reads_stream: l.reads_stream || r.reads_stream,
                stream_factor: l.stream_factor,
            }
        }
        OnlineOp::Union(u) => {
            let mut tags: Option<Tags> = None;
            for c in &u.children {
                let t = derive(c);
                tags = Some(match tags {
                    None => t,
                    Some(mut acc) => {
                        for (x, y) in acc.attr_uncertain.iter_mut().zip(t.attr_uncertain) {
                            *x |= y;
                        }
                        acc.tuple_uncertain |= t.tuple_uncertain;
                        acc.reads_stream |= t.reads_stream;
                        acc.stream_factor = acc.stream_factor.max(t.stream_factor);
                        acc
                    }
                });
            }
            tags.unwrap_or(Tags {
                attr_uncertain: Vec::new(),
                tuple_uncertain: false,
                reads_stream: false,
                stream_factor: 0,
            })
        }
        OnlineOp::Aggregate(a) => {
            let child = derive(&a.child);
            let mut attr_uncertain = vec![false; a.group_cols.len()];
            for call in &a.aggs {
                attr_uncertain.push(
                    child.tuple_uncertain || expr_uncertain(&call.input, &child.attr_uncertain),
                );
            }
            Tags {
                attr_uncertain,
                tuple_uncertain: child.tuple_uncertain,
                reads_stream: child.reads_stream,
                stream_factor: 0,
            }
        }
    }
}
