//! Offline source lints: hand-rolled (zero registry dependencies) checks
//! enforcing repo rules that rustc/clippy cannot express.
//!
//! Since analysis v2 the lints run over the token stream of
//! [`crate::lexer`], not raw line text, so string literals, comments, and
//! doc-comments can never produce findings. Finding *text* is still the
//! (chain-folded) source line, so `scripts/lint-allow.txt` substring
//! entries keep their meaning.
//!
//! Rules:
//!
//! * **L001 `no-panic-hot`** — no `.unwrap()`, `.expect(`, or panic-family
//!   macros in the online-operator hot paths (`crates/core/src/ops.rs`,
//!   `ops_agg.rs`, `ops_join.rs`). A bad row must surface as an
//!   `EngineError` the driver can report, not abort the process mid-batch.
//! * **L002 `no-unordered-iter-output`** — no direct `HashMap`/`HashSet`
//!   iteration in files whose iteration order can reach a `Sink` or a
//!   `BatchReport` (`crates/core/src/registry.rs`, `sink.rs`,
//!   `crates/baselines/src/hda.rs`): two runs of the same query must
//!   produce byte-identical reports.
//! * **L003 `no-instant-outside-metrics`** — no `Instant` outside
//!   `crates/core/src/metrics.rs`; all timing goes through `Span` so the
//!   metrics layer stays the single clock authority.
//! * **L004 `fault-hook-ungated`** — every fault-injection hook
//!   (`inject_*` call) in `crates/core/src/*.rs` outside `faults.rs` must
//!   sit behind an armed-injector gate: a `Some(` match on the same
//!   logical line or within the two preceding ones (the window tolerates
//!   rustfmt wrapping an `if let Some(f) = …` header away from the call).
//!   A hook without a gate would fire even when the config carries no
//!   `FaultPlan` — i.e. in production — so L004 findings are **not**
//!   allowlistable.
//! * **L005 `instrumentation-coverage`** — every `fn process(` body in the
//!   operator hot-path files (the L001 file set) must open a trace span
//!   via `ctx.op_span(` before the next `fn `, so a traced batch timeline
//!   never silently folds an operator's time into its parent. The
//!   `OnlineOp` enum dispatcher (a pure `match self` delegation) is
//!   exempt.
//! * **L006 `no-unbounded-blocking`** — no unbounded blocking in the
//!   serving layer's scheduler/admission hot paths and the shard
//!   coordinator (`crates/server/src/scheduler.rs`, `session.rs`,
//!   `shard.rs`): no
//!   `thread::sleep`, no bare channel `.recv()`, no `Condvar` `.wait(`
//!   without a timeout (`.wait_timeout(` is the sanctioned form). A
//!   stalled or slow driver must never wedge admission or a polling
//!   client behind an unbounded park. The worker pool's park/unpark core
//!   is the one audited exception, allowlisted in
//!   `scripts/lint-allow.txt`.
//! * **L007 `no-row-materialization-in-kernels`** — no per-row `Value`
//!   materialization inside the columnar kernel modules (any file under a
//!   `src/kernels/` directory): no `.clone()`, `.to_vec()`, or
//!   `.to_owned()`. Kernels must work over typed column vectors and
//!   selection indices. The row⇄batch facade (`kernels/facade.rs`) is the
//!   audited exception and is allowlisted.
//! * **L008 `panic-reachable-hot`** — interprocedural: no panic site
//!   (`.unwrap(`/`.expect(`/panic-family macro) in any function reachable
//!   over the call graph from the hot-path roots (`OnlineOp::process`, the
//!   driver's `step`/`run_batch`/`run_to_completion`, the scheduler's
//!   `worker_loop`). This closes L001's fixed-file-list gap: a panic in a
//!   helper three calls deep is a finding. `crates/core/src/faults.rs` is
//!   exempt by rule definition — its panics are deliberate injected
//!   faults contained by the driver's `catch_unwind` perimeter.
//! * **L009 `lock-order-deadlock`** — static lock-order analysis of
//!   `crates/server`: held-lock sets propagated over the call graph; any
//!   cycle in the lock-order graph, or re-acquiring a held lock, is a
//!   finding. See [`crate::lockorder`].
//! * **L010 `stale-allow-entry`** — every `scripts/lint-allow.txt` entry
//!   must still match a live finding; dead entries are themselves errors
//!   (a suppression must not outlive the code it excused). Reported with
//!   the allowlist file/line. Not allowlistable.
//! * **L011 `serving-instrumentation-coverage`** — L005's discipline
//!   extended to the serving layer: every function body in
//!   `crates/server/src/scheduler.rs` that transitions a session state
//!   (`.state =`), flips slot ownership (`.holds_slot =`), or bumps an
//!   admission/shed counter (`.rejected +=` / `.shed +=`) must also call
//!   `trace_mark` in the same body, so no lifecycle transition or
//!   scheduler decision is invisible to the telemetry plane. Not
//!   allowlistable — an unobservable transition defeats the tracing
//!   contract by construction.
//! * **L012 `raw-durable-write`** — all durable writes go through
//!   `iolap-store`'s CRC-framed segment writer or atomic artifact
//!   replace: no raw `std::fs::write`, `File::create`, or
//!   `OpenOptions::new` anywhere under `crates/*/src/**` except
//!   `crates/store/` itself. A raw write has no torn-write detection and
//!   no crash-consistent rename, so a kill mid-write corrupts state the
//!   recovery path then trusts. The audited exceptions are the dev-only
//!   golden-file updaters (opt-in via `IOLAP_UPDATE_GOLDEN`), allowlisted
//!   in `scripts/lint-allow.txt`.
//!
//! Tokens after the first `#[cfg(test)]` attribute (the repo convention
//! keeps test modules last) are not linted. Audited exceptions live in
//! `scripts/lint-allow.txt`, one per line:
//!
//! ```text
//! RULE  FILE-SUFFIX  SUBSTRING-OF-FLAGGED-LINE
//! ```

use crate::callgraph::{self, CallGraph};
use crate::diag::Rule;
use crate::lexer::{self, TokKind, Token};
use crate::lockorder;
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source-lint finding.
#[derive(Clone, Debug)]
pub struct LintFinding {
    /// Violated rule.
    pub rule: Rule,
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The flagged source line (chain-folded), trimmed — or, for the
    /// interprocedural rules, a rendered description of the finding.
    pub text: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {}:{}: {}",
            self.rule, self.file, self.line, self.text
        )
    }
}

/// Parsed allowlist of audited exceptions.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

/// One parsed allowlist entry with its source line (for L010 reporting).
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule id, e.g. `"L006"`.
    pub rule: String,
    /// Path suffix the entry applies to.
    pub file: String,
    /// Substring of the flagged line.
    pub substr: String,
    /// 1-based line in the allowlist file.
    pub line: usize,
}

impl AllowEntry {
    fn matches(&self, finding: &LintFinding) -> bool {
        self.rule == finding.rule.id()
            && finding.file.ends_with(self.file.as_str())
            && finding.text.contains(self.substr.as_str())
    }
}

impl Allowlist {
    /// Parse allowlist text. Each non-comment line is
    /// `RULE<ws>FILE<ws>SUBSTRING` where SUBSTRING is the rest of the line.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let (Some(rule), Some(file)) = (parts.next(), parts.next()) else {
                continue;
            };
            let substr = parts.next().unwrap_or("").trim().to_string();
            entries.push(AllowEntry {
                rule: rule.to_string(),
                file: file.to_string(),
                substr,
                line: i + 1,
            });
        }
        Allowlist { entries }
    }

    /// Load from a file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> io::Result<Allowlist> {
        match fs::read_to_string(path) {
            Ok(text) => Ok(Allowlist::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(e),
        }
    }

    /// Whether `finding` matches an audited exception: rule equal, file a
    /// path-suffix match, and the entry substring contained in the flagged
    /// line. L004 findings are never allowed — an ungated fault hook is a
    /// release-reachability bug, not an auditable style exception. L010
    /// findings (stale entries) are likewise never allowlistable: an
    /// allowlist cannot excuse its own rot. L011 (a scheduler transition
    /// invisible to tracing) defeats the telemetry contract by
    /// construction, so it too refuses the allowlist.
    pub fn allows(&self, finding: &LintFinding) -> bool {
        if matches!(finding.rule, Rule::L004 | Rule::L010 | Rule::L011) {
            return false;
        }
        self.entries.iter().any(|e| e.matches(finding))
    }

    /// L010: entries that match none of `findings` are stale — the code
    /// they excused no longer triggers the rule — and become findings
    /// themselves, pointing at the allowlist file/line.
    pub fn stale_entries(&self, findings: &[LintFinding]) -> Vec<LintFinding> {
        self.entries
            .iter()
            .filter(|e| !findings.iter().any(|f| e.matches(f)))
            .map(|e| LintFinding {
                rule: Rule::L010,
                file: "scripts/lint-allow.txt".to_string(),
                line: e.line,
                text: format!(
                    "stale allowlist entry `{} {} {}` matches no live finding",
                    e.rule, e.file, e.substr
                ),
            })
            .collect()
    }

    /// Number of entries (reporting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no exceptions are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

const L001_FILES: &[&str] = &[
    "crates/core/src/ops.rs",
    "crates/core/src/ops_agg.rs",
    "crates/core/src/ops_join.rs",
];

const L002_FILES: &[&str] = &[
    "crates/core/src/registry.rs",
    "crates/core/src/sink.rs",
    "crates/baselines/src/hda.rs",
];

/// The serving layer's scheduler/admission hot paths, plus the shard
/// coordinator (a stalled worker must surface as a read-timeout `Err`,
/// never wedge a fold behind an unbounded park). `tcp.rs` is exempt:
/// socket reads legitimately block on the network.
const L006_FILES: &[&str] = &[
    "crates/server/src/scheduler.rs",
    "crates/server/src/session.rs",
    "crates/server/src/shard.rs",
];

/// Order-revealing hash-container accessors (L002). Point lookups
/// (`get`/`insert`/`contains_key`) stay legal.
const L002_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Per-row materialization methods forbidden in kernel modules (L007).
const L007_METHODS: &[&str] = &["clone", "to_vec", "to_owned"];

/// L008 call-graph roots: `(file suffix, fn name)`. A panic site in any
/// function reachable from one of these is a finding.
pub const L008_ROOTS: &[(&str, &str)] = &[
    ("crates/core/src/ops.rs", "process"),
    ("crates/core/src/driver.rs", "step"),
    ("crates/core/src/driver.rs", "run_batch"),
    ("crates/core/src/driver.rs", "run_to_completion"),
    ("crates/server/src/scheduler.rs", "worker_loop"),
];

/// Files whose panic *sites* L008 ignores: deliberate fault injection
/// contained by the driver's `catch_unwind` perimeter.
const L008_EXEMPT: &[&str] = &["crates/core/src/faults.rs"];

/// L011 scope: the scheduler owns every session state transition and
/// admission/shed decision, so coverage is checked there (allowlist-free,
/// like L004/L010).
const L011_FILES: &[&str] = &["crates/server/src/scheduler.rs"];

/// Source-line index: maps token lines back to chain-folded logical lines
/// so finding text and line numbers match the historical (allowlist-
/// compatible) form.
struct LineIndex {
    /// Logical lines: `(1-based start line, folded text)`.
    logical: Vec<(usize, String)>,
    /// Physical 1-based line → index into `logical`.
    map: Vec<usize>,
}

impl LineIndex {
    fn build(content: &str) -> LineIndex {
        let mut logical: Vec<(usize, String)> = Vec::new();
        let mut map: Vec<usize> = vec![0];
        for (i, line) in content.lines().enumerate() {
            let trimmed = line.trim_start();
            // Comment-only lines carry no tokens and do not break a chain
            // or consume a slot in the L004 gate window.
            if trimmed.starts_with("//") && !logical.is_empty() {
                map.push(logical.len() - 1);
                continue;
            }
            // Method-chain continuations fold into the previous logical
            // line so `self.state\n    .values()` reports the chain start.
            match logical.last_mut() {
                Some((_, prev)) if trimmed.starts_with('.') => prev.push_str(trimmed.trim_end()),
                _ => logical.push((i + 1, line.trim_end().to_string())),
            }
            map.push(logical.len() - 1);
        }
        if logical.is_empty() {
            logical.push((1, String::new()));
        }
        LineIndex { logical, map }
    }

    /// Logical index for a physical line.
    fn idx(&self, line: usize) -> usize {
        self.map
            .get(line)
            .copied()
            .unwrap_or(self.logical.len() - 1)
    }
}

/// Lint one file's source (the per-file rules L001–L007). `rel_path` is
/// repo-relative with forward slashes; rules are dispatched on it. The
/// interprocedural rules (L008/L009) need the whole file set — use
/// [`lint_files`] or [`lint_tree`].
pub fn lint_source(rel_path: &str, content: &str) -> Vec<LintFinding> {
    let tokens = lexer::lex(content);
    let toks = lexer::production_prefix(&tokens);
    let index = LineIndex::build(content);
    // (rule, logical index) pairs; the set dedups chain-folded repeats.
    let mut hits: BTreeSet<(Rule, usize)> = BTreeSet::new();

    if L001_FILES.contains(&rel_path) {
        for line in panic_site_lines(toks) {
            hits.insert((Rule::L001, index.idx(line)));
        }
        for line in spanless_process_lines(toks) {
            hits.insert((Rule::L005, index.idx(line)));
        }
    }

    if L002_FILES.contains(&rel_path) {
        let tracked = tracked_hash_idents(toks);
        for line in unordered_iteration_lines(toks, &tracked) {
            hits.insert((Rule::L002, index.idx(line)));
        }
    }

    if rel_path.starts_with("crates/core/src/") && rel_path != "crates/core/src/metrics.rs" {
        for t in toks {
            if t.is_ident("Instant") {
                hits.insert((Rule::L003, index.idx(t.line)));
            }
        }
    }

    if L006_FILES.contains(&rel_path) {
        for line in unbounded_blocking_lines(toks) {
            hits.insert((Rule::L006, index.idx(line)));
        }
    }

    if L011_FILES.contains(&rel_path) {
        for line in untraced_transition_lines(toks) {
            hits.insert((Rule::L011, index.idx(line)));
        }
    }

    if rel_path.starts_with("crates/")
        && rel_path.contains("/src/")
        && !rel_path.starts_with("crates/store/")
    {
        for line in raw_durable_write_lines(toks) {
            hits.insert((Rule::L012, index.idx(line)));
        }
    }

    if rel_path.contains("/src/kernels/") {
        for (i, t) in toks.iter().enumerate() {
            if i > 0
                && toks[i - 1].is_punct('.')
                && t.kind == TokKind::Ident
                && L007_METHODS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
                && toks.get(i + 2).is_some_and(|p| p.is_punct(')'))
            {
                hits.insert((Rule::L007, index.idx(t.line)));
            }
        }
    }

    if rel_path.starts_with("crates/core/src/") && rel_path != "crates/core/src/faults.rs" {
        // Logical lines containing a `Some(` token pair, for the gate check.
        let mut gated: BTreeSet<usize> = BTreeSet::new();
        for (i, t) in toks.iter().enumerate() {
            if t.is_ident("Some") && toks.get(i + 1).is_some_and(|p| p.is_punct('(')) {
                gated.insert(index.idx(t.line));
            }
        }
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokKind::Ident
                && t.text.starts_with("inject_")
                && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
            {
                let k = index.idx(t.line);
                let is_gated = (k.saturating_sub(2)..=k).any(|p| gated.contains(&p));
                if !is_gated {
                    hits.insert((Rule::L004, k));
                }
            }
        }
    }

    let mut findings: Vec<LintFinding> = hits
        .into_iter()
        .map(|(rule, idx)| {
            let (no, text) = &index.logical[idx];
            LintFinding {
                rule,
                file: rel_path.to_string(),
                line: *no,
                text: text.trim().to_string(),
            }
        })
        .collect();
    findings.sort_by_key(|a| (a.line, a.rule));
    findings
}

/// Token lines of panic sites: `.unwrap(` / `.expect(` method calls and
/// panic-family macro invocations.
fn panic_site_lines(toks: &[Token]) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let next_paren = toks.get(i + 1).is_some_and(|p| p.is_punct('('));
        if prev_dot && next_paren && (t.text == "unwrap" || t.text == "expect") {
            out.push(t.line);
        }
        if !prev_dot
            && toks.get(i + 1).is_some_and(|p| p.is_punct('!'))
            && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
        {
            out.push(t.line);
        }
    }
    out
}

/// L005: `fn process(` bodies (to the next `fn` token) without an
/// `.op_span(` call; `match self` dispatchers are exempt. Returns the
/// lines of the offending `fn` tokens.
fn spanless_process_lines(toks: &[Token]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("process"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            let end = toks[i + 1..]
                .iter()
                .position(|t| t.is_ident("fn"))
                .map(|p| i + 1 + p)
                .unwrap_or(toks.len());
            let body = &toks[i..end];
            let spanned = body
                .windows(3)
                .any(|w| w[0].is_punct('.') && w[1].is_ident("op_span") && w[2].is_punct('('));
            let dispatcher = body
                .windows(2)
                .any(|w| w[0].is_ident("match") && w[1].is_ident("self"));
            if !spanned && !dispatcher {
                out.push(toks[i].line);
            }
            i = end;
            continue;
        }
        i += 1;
    }
    out
}

/// L011: function bodies (to the next `fn` token, like L005) that mutate
/// scheduler-observable state — `.state =` / `.holds_slot =` assignments
/// (not `==` comparisons) or `.rejected +=` / `.shed +=` counter bumps —
/// without calling `trace_mark` in the same body. Returns the lines of
/// the offending `fn` tokens.
fn untraced_transition_lines(toks: &[Token]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let end = toks[i + 1..]
                .iter()
                .position(|t| t.is_ident("fn"))
                .map(|p| i + 1 + p)
                .unwrap_or(toks.len());
            let body = &toks[i..end];
            let transitions = body.windows(4).any(|w| {
                let assign = w[0].is_punct('.')
                    && (w[1].is_ident("state") || w[1].is_ident("holds_slot"))
                    && w[2].is_punct('=')
                    && !w[3].is_punct('=');
                let bump = w[0].is_punct('.')
                    && (w[1].is_ident("rejected") || w[1].is_ident("shed"))
                    && w[2].is_punct('+')
                    && w[3].is_punct('=');
                assign || bump
            });
            let traced = body.iter().any(|t| t.is_ident("trace_mark"));
            if transitions && !traced {
                out.push(toks[i].line);
            }
            i = end;
            continue;
        }
        i += 1;
    }
    out
}

/// L012 raw-write forms: `fs::write(`, `File::create(`, and
/// `OpenOptions::new(` path calls (also matched when spelled through a
/// longer path like `std::fs::write` — the final two segments decide).
fn raw_durable_write_lines(toks: &[Token]) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let path_call = |head: &str, name: &str| {
            t.is_ident(head)
                && toks.get(i + 1).is_some_and(|p| p.is_punct(':'))
                && toks.get(i + 2).is_some_and(|p| p.is_punct(':'))
                && toks.get(i + 3).is_some_and(|n| n.is_ident(name))
                && toks.get(i + 4).is_some_and(|p| p.is_punct('('))
        };
        if path_call("fs", "write")
            || path_call("File", "create")
            || path_call("OpenOptions", "new")
        {
            out.push(t.line);
        }
    }
    out
}

/// Identifiers declared with a hash-based container type:
/// `name: HashMap<…>` / `name: HashSet<…>` / `name = HashMap::…`.
fn tracked_hash_idents(toks: &[Token]) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for w in toks.windows(4) {
        let decl_colon = w[0].kind == TokKind::Ident
            && w[1].is_punct(':')
            && (w[2].is_ident("HashMap") || w[2].is_ident("HashSet"))
            && w[3].is_punct('<');
        let decl_assign = w[0].kind == TokKind::Ident
            && w[1].is_punct('=')
            && (w[2].is_ident("HashMap") || w[2].is_ident("HashSet"))
            && w[3].is_punct(':');
        if decl_colon || decl_assign {
            idents.insert(w[0].text.clone());
        }
    }
    idents
}

/// Token lines where a tracked hash container is iterated directly:
/// order-revealing method calls (`x.values()`) or for-loop forms
/// (`for … in [&[mut]] [self.]x`).
fn unordered_iteration_lines(toks: &[Token], tracked: &BTreeSet<String>) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !tracked.contains(&t.text) {
            continue;
        }
        // Method form: x . <order-revealing method> (
        if let (Some(dot), Some(m), Some(paren)) =
            (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
        {
            if dot.is_punct('.')
                && m.kind == TokKind::Ident
                && L002_METHODS.contains(&m.text.as_str())
                && paren.is_punct('(')
            {
                out.push(t.line);
                continue;
            }
        }
        // For-loop form: `in` [& [mut]] [self .] x, not followed by `.`
        // (a trailing `.` means a method/field chain, judged above).
        let mut j = i;
        if j >= 2 && toks[j - 1].is_punct('.') && toks[j - 2].is_ident("self") {
            j -= 2;
        }
        while j >= 1 && (toks[j - 1].is_punct('&') || toks[j - 1].is_ident("mut")) {
            j -= 1;
        }
        let after_in = j >= 1 && toks[j - 1].is_ident("in");
        let chained = toks.get(i + 1).is_some_and(|n| n.is_punct('.'));
        if after_in && !chained {
            out.push(t.line);
        }
    }
    out
}

/// L006 unbounded-blocking forms: `thread::sleep`, bare `.recv()`, and
/// `.wait(` (the distinct idents `recv_timeout`/`try_recv`/`wait_timeout`
/// never match — an advantage of token matching over substrings).
fn unbounded_blocking_lines(toks: &[Token]) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("thread")
            && toks.get(i + 1).is_some_and(|p| p.is_punct(':'))
            && toks.get(i + 2).is_some_and(|p| p.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("sleep"))
        {
            out.push(t.line);
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        if prev_dot
            && t.is_ident("recv")
            && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
            && toks.get(i + 2).is_some_and(|p| p.is_punct(')'))
        {
            out.push(t.line);
        }
        if prev_dot && t.is_ident("wait") && toks.get(i + 1).is_some_and(|p| p.is_punct('(')) {
            out.push(t.line);
        }
    }
    out
}

/// Lint a set of `(rel_path, source)` files: the per-file rules plus the
/// interprocedural L008 (panic reachability) and L009 (lock order) over
/// the whole set. This is also the fixture-test entry point — virtual
/// paths must use the `crates/<name>/src/…` shape to trigger the scoped
/// rules.
pub fn lint_files(files: &[(String, String)]) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    for (path, src) in files {
        findings.extend(lint_source(path, src));
    }
    let graph = CallGraph::build(files);
    findings.extend(l008_findings(&graph));
    findings.extend(l009_findings(&graph));
    sort_findings(&mut findings);
    findings
}

/// L008 over a built call graph: panic sites reachable from the hot-path
/// roots.
fn l008_findings(graph: &CallGraph) -> Vec<LintFinding> {
    let mut roots = Vec::new();
    for (file, name) in L008_ROOTS {
        roots.extend(graph.find(file, name));
    }
    graph
        .reachable_panics(&roots, L008_EXEMPT)
        .into_iter()
        .map(|p| LintFinding {
            rule: Rule::L008,
            file: p.file,
            line: p.line,
            text: format!("{} reachable from hot path via {}", p.what, p.chain),
        })
        .collect()
}

/// L009 over a built call graph: lock-order analysis of `crates/server`.
fn l009_findings(graph: &CallGraph) -> Vec<LintFinding> {
    lockorder::analyze(graph, "crates/server/")
        .findings
        .into_iter()
        .map(|f| LintFinding {
            rule: Rule::L009,
            file: f.file,
            line: f.line,
            text: f.message,
        })
        .collect()
}

/// One lint finding as a machine-readable JSON object (stable key order,
/// mirroring [`crate::diag::diagnostic_json`] for the verifier side).
pub fn finding_json(f: &LintFinding) -> String {
    format!(
        "{{\"rule\":\"{}\",\"title\":\"{}\",\"file\":\"{}\",\"line\":{},\"text\":\"{}\"}}",
        f.rule.id(),
        f.rule.title(),
        crate::diag::json_escape(&f.file),
        f.line,
        crate::diag::json_escape(&f.text)
    )
}

/// Deterministic finding order: (file, line, rule), exact repeats deduped.
pub fn sort_findings(findings: &mut Vec<LintFinding>) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.text).cmp(&(&b.file, b.line, b.rule, &b.text))
    });
    findings.dedup_by(|a, b| {
        a.rule == b.rule && a.file == b.file && a.line == b.line && a.text == b.text
    });
}

/// Lint every `crates/**/*.rs` file under `repo_root` (per-file rules),
/// plus the interprocedural rules over the production sources
/// (`crates/*/src/**`). Files are visited in sorted order and findings
/// sorted by (file, line, rule), so the report is deterministic.
pub fn lint_tree(repo_root: &Path) -> io::Result<Vec<LintFinding>> {
    let mut files = Vec::new();
    collect_rs_files(&repo_root.join("crates"), &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(repo_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &content));
    }
    let prod = callgraph::collect_prod_sources(repo_root)?;
    let graph = CallGraph::build(&prod);
    findings.extend(l008_findings(&graph));
    findings.extend(l009_findings(&graph));
    sort_findings(&mut findings);
    Ok(findings)
}

/// The repo root, located from this crate's manifest directory. Valid for
/// in-workspace builds (which is the only place the lints run).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Per-rule finding counts, zero-filled across all lint rules.
pub fn lint_counts(findings: &[LintFinding]) -> Vec<(Rule, usize)> {
    Rule::lint_rules()
        .iter()
        .map(|&r| (r, findings.iter().filter(|f| f.rule == r).count()))
        .collect()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l001_flags_unwrap_not_unwrap_or() {
        let src = "fn f() {\n    let x = y.unwrap();\n    let z = y.unwrap_or(0);\n}\n";
        let f = lint_source("crates/core/src/ops.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::L001);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn l001_skips_comments_and_tests() {
        let src = "// a.unwrap() in a comment\nfn f() {}\n#[cfg(test)]\nmod t { fn g() { x.unwrap(); } }\n";
        assert!(lint_source("crates/core/src/ops_agg.rs", src).is_empty());
    }

    #[test]
    fn l001_flags_panic_macros_not_strings() {
        let src = "fn f() { unreachable!(\"bad\"); }\nfn g() { let s = \"panicked: x\"; }\n";
        let f = lint_source("crates/core/src/ops_join.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn l001_is_blind_to_literals_by_construction() {
        // The substring matcher's false-positive class: patterns inside
        // strings, raw strings, and doc comments must produce nothing.
        let src = "/// Returns `x.unwrap()` semantics.\n\
                   fn f() -> String {\n\
                   let a = \"call .unwrap() then panic!(now)\";\n\
                   let b = r#\"x.expect(\"msg\")\"#;\n\
                   format!(\"{a}{b}\")\n\
                   }\n";
        assert!(lint_source("crates/core/src/ops.rs", src).is_empty());
    }

    #[test]
    fn l002_flags_tracked_map_iteration() {
        let src = "struct S { state: HashMap<u32, u32> }\n\
                   impl S {\n\
                   fn f(&self) { for (k, v) in &self.state { let _ = (k, v); } }\n\
                   fn g(&self) { let _ = self.state.values().count(); }\n\
                   fn h(&self) { let _ = self.state.get(&1); }\n\
                   }\n";
        let f = lint_source("crates/core/src/sink.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert_eq!(f[1].line, 4);
    }

    #[test]
    fn l002_respects_ident_boundaries() {
        let src = "struct S { state: HashMap<u32, u32>, mystate: Vec<u32> }\n\
                   fn f(s: &S) { for x in &s.mystate { let _ = x; } }\n";
        assert!(lint_source("crates/core/src/registry.rs", src).is_empty());
    }

    #[test]
    fn l003_flags_instant_outside_metrics_only() {
        let src = "use std::time::Instant;\n";
        assert_eq!(lint_source("crates/core/src/driver.rs", src).len(), 1);
        assert!(lint_source("crates/core/src/metrics.rs", src).is_empty());
        assert!(lint_source("crates/engine/src/expr.rs", src).is_empty());
    }

    #[test]
    fn l003_is_blind_to_instant_in_strings() {
        let src = "fn f() { let s = \"took Instant measurements\"; }\n";
        assert!(lint_source("crates/core/src/driver.rs", src).is_empty());
    }

    #[test]
    fn l004_flags_ungated_fault_hooks_only() {
        let ungated = "fn f(i: &FaultInjector) {\n    i.inject_worker_panic(b);\n}\n";
        let f = lint_source("crates/core/src/ops_agg.rs", ungated);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::L004);
        assert_eq!(f[0].line, 2);
        // A Some( gate up to two logical lines back (rustfmt wrapping)
        // legitimizes the hook.
        let gated = "fn f() {\n    if let Some(f) = faults {\n        f.inject_worker_panic(b);\n    }\n}\n";
        assert!(lint_source("crates/core/src/ops_agg.rs", gated).is_empty());
        // Hook bodies live in faults.rs; the rule exempts it.
        assert!(lint_source("crates/core/src/faults.rs", ungated).is_empty());
        // Other crates are out of scope.
        assert!(lint_source("crates/bench/src/lib.rs", ungated).is_empty());
    }

    #[test]
    fn l005_flags_spanless_process_bodies() {
        let bad = "impl ScanOp {\n\
                   fn process(&mut self, ctx: &mut BatchCtx<'_>) -> R {\n\
                   let out = BatchData::empty(s);\n\
                   Ok(out)\n\
                   }\n\
                   fn other(&self) {}\n\
                   }\n";
        let f = lint_source("crates/core/src/ops.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::L005);
        assert_eq!(f[0].line, 2);
        // Opening a span legitimizes the body.
        let good = bad.replace(
            "let out = BatchData::empty(s);",
            "let sp = ctx.op_span(\"Scan\");\nlet out = BatchData::empty(s);",
        );
        assert!(lint_source("crates/core/src/ops.rs", &good).is_empty());
        // The enum dispatcher (match self delegation) is exempt.
        let dispatch = "impl OnlineOp {\n\
                        pub fn process(&mut self, ctx: &mut BatchCtx<'_>) -> R {\n\
                        match self {\n\
                        OnlineOp::Scan(op) => op.process(ctx),\n\
                        }\n\
                        }\n\
                        }\n";
        assert!(lint_source("crates/core/src/ops_join.rs", dispatch).is_empty());
        // Other files are out of scope.
        assert!(lint_source("crates/core/src/driver.rs", bad).is_empty());
    }

    #[test]
    fn l006_flags_unbounded_blocking_in_server_hot_paths() {
        let src = "fn park(&self) {\n\
                   let g = self.work.wait(st);\n\
                   let x = rx.recv();\n\
                   thread::sleep(d);\n\
                   }\n";
        let f = lint_source("crates/server/src/scheduler.rs", src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::L006));
        let src2 = "fn f() { let x = rx.recv(); }\n";
        assert_eq!(lint_source("crates/server/src/session.rs", src2).len(), 1);
        // The bounded forms are sanctioned.
        let ok = "fn f() {\n\
                  let (g, _) = cv.wait_timeout(st, d);\n\
                  let r = handle.try_recv();\n\
                  let r2 = rx.recv_timeout(d);\n\
                  }\n";
        assert!(lint_source("crates/server/src/scheduler.rs", ok).is_empty());
        assert!(lint_source("crates/server/src/session.rs", ok).is_empty());
        // The TCP front-end (network blocking) is out of scope.
        let blocking = "fn f() { let g = cv.wait(st); }\n";
        assert!(lint_source("crates/server/src/tcp.rs", blocking).is_empty());
        assert!(lint_source("crates/core/src/driver.rs", blocking).is_empty());
    }

    #[test]
    fn l006_is_blind_to_recv_in_strings() {
        let src = "fn f() { let s = \"client .recv() stalled; cv.wait(st)\"; }\n";
        assert!(lint_source("crates/server/src/scheduler.rs", src).is_empty());
    }

    #[test]
    fn l006_is_allowlistable_for_the_park_core() {
        let allow = Allowlist::parse("L006 crates/server/src/scheduler.rs work.wait(");
        let hit = LintFinding {
            rule: Rule::L006,
            file: "crates/server/src/scheduler.rs".into(),
            line: 1,
            text: "st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);".into(),
        };
        assert!(allow.allows(&hit));
        let other = LintFinding {
            text: "let g = self.client.wait(st);".into(),
            ..hit.clone()
        };
        assert!(!allow.allows(&other), "only the park core is audited");
    }

    #[test]
    fn l007_flags_value_materialization_in_kernels() {
        let src = "fn gather(col: &Column) {\n\
                   let v = cells[i].clone();\n\
                   let owned = dict.to_vec();\n\
                   let s = name.to_owned();\n\
                   let ok = col.len();\n\
                   }\n";
        let f = lint_source("crates/relation/src/kernels/filter.rs", src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::L007));
        // Comments and test modules are exempt, like every lint.
        let commented = "// values.clone() for the reference path\nfn f() {}\n";
        assert!(lint_source("crates/relation/src/kernels/fold.rs", commented).is_empty());
        // Files outside kernels/ are out of scope.
        assert!(lint_source("crates/relation/src/columnar.rs", src).is_empty());
        assert!(lint_source("crates/core/src/driver.rs", src).is_empty());
    }

    #[test]
    fn l007_is_allowlistable_for_the_facade() {
        let allow = Allowlist::parse("L007 crates/relation/src/kernels/facade.rs .clone()");
        let hit = LintFinding {
            rule: Rule::L007,
            file: "crates/relation/src/kernels/facade.rs".into(),
            line: 1,
            text: "Batch::from_rows(rel.schema().clone(), rel.rows())".into(),
        };
        assert!(allow.allows(&hit));
        let other = LintFinding {
            file: "crates/relation/src/kernels/filter.rs".into(),
            ..hit.clone()
        };
        assert!(!allow.allows(&other), "only the facade is audited");
    }

    #[test]
    fn l011_flags_untraced_scheduler_transitions() {
        let bad = "fn admit(&self) {\n\
                   slot.state = SessionState::Running;\n\
                   slot.holds_slot = true;\n\
                   }\n\
                   fn reject(st: &mut State) {\n\
                   st.rejected += 1;\n\
                   st.shed += 1;\n\
                   }\n";
        let f = lint_source("crates/server/src/scheduler.rs", bad);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::L011));
        assert_eq!(f[0].line, 1, "finding anchors at the fn");
        assert_eq!(f[1].line, 5);
        // A trace_mark call in the same body legitimizes the transition.
        let good = "fn admit(&self, tracer: Option<&Tracer>) {\n\
                    trace_mark(tracer, \"sess.admit\", id, \"direct\");\n\
                    slot.state = SessionState::Running;\n\
                    }\n";
        assert!(lint_source("crates/server/src/scheduler.rs", good).is_empty());
        // Comparisons are reads, not transitions.
        let cmp = "fn check(&self) -> bool { slot.state == SessionState::Running }\n";
        assert!(lint_source("crates/server/src/scheduler.rs", cmp).is_empty());
        // trace_mark in one body cannot cover another body's transition.
        let split = "fn a(t: Option<&Tracer>) { trace_mark(t, \"x\", 0, \"\"); }\n\
                     fn b(slot: &mut Slot) { slot.state = SessionState::Done; }\n";
        let f = lint_source("crates/server/src/scheduler.rs", split);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
        // Other files are out of scope.
        assert!(lint_source("crates/server/src/session.rs", bad).is_empty());
        assert!(lint_source("crates/core/src/driver.rs", bad).is_empty());
    }

    #[test]
    fn l011_is_never_allowlistable() {
        let allow = Allowlist::parse("L011 crates/server/src/scheduler.rs fn admit");
        let hit = LintFinding {
            rule: Rule::L011,
            file: "crates/server/src/scheduler.rs".into(),
            line: 1,
            text: "fn admit(&self) {".into(),
        };
        assert!(!allow.allows(&hit), "L011 must ignore allowlist entries");
    }

    #[test]
    fn l012_flags_raw_durable_writes_outside_store() {
        let src = "fn save(p: &Path) {\n\
                   std::fs::write(p, b\"x\").unwrap();\n\
                   let f = File::create(p);\n\
                   let o = OpenOptions::new().append(true).open(p);\n\
                   let ok = fs::read_to_string(p);\n\
                   }\n";
        let f = lint_source("crates/server/src/durable.rs", src);
        let l012: Vec<_> = f.iter().filter(|x| x.rule == Rule::L012).collect();
        assert_eq!(l012.len(), 3, "{f:?}");
        assert_eq!(l012[0].line, 2);
        assert_eq!(l012[1].line, 3);
        assert_eq!(l012[2].line, 4);
        // The store crate IS the framed writer — exempt by definition.
        assert!(lint_source("crates/store/src/segment.rs", src)
            .iter()
            .all(|x| x.rule != Rule::L012));
        // Non-crate paths (scripts, tests dirs) are out of scope.
        assert!(lint_source("crates/bench/tests/smoke.rs", src).is_empty());
        // Reads and string literals never match.
        let clean = "fn load(p: &Path) {\n\
                     let s = fs::read_to_string(p);\n\
                     let msg = \"use fs::write( only in store\";\n\
                     }\n";
        assert!(lint_source("crates/bench/src/json.rs", clean)
            .iter()
            .all(|x| x.rule != Rule::L012));
    }

    #[test]
    fn l012_is_allowlistable_for_golden_updaters() {
        let allow = Allowlist::parse("L012 crates/bench/src/observe.rs fs::write(&golden_path");
        let hit = LintFinding {
            rule: Rule::L012,
            file: "crates/bench/src/observe.rs".into(),
            line: 1,
            text: "return match std::fs::write(&golden_path, exposition) {".into(),
        };
        assert!(allow.allows(&hit));
        let other = LintFinding {
            file: "crates/server/src/durable.rs".into(),
            text: "std::fs::write(&golden_path, bytes)".into(),
            ..hit.clone()
        };
        assert!(!allow.allows(&other), "only the audited updater is excused");
    }

    #[test]
    fn l004_is_never_allowlistable() {
        let allow = Allowlist::parse("L004 crates/core/src/ops.rs inject_worker_panic");
        let hit = LintFinding {
            rule: Rule::L004,
            file: "crates/core/src/ops.rs".into(),
            line: 1,
            text: "f.inject_worker_panic(b);".into(),
        };
        assert!(!allow.allows(&hit), "L004 must ignore allowlist entries");
    }

    #[test]
    fn allowlist_matches_rule_file_and_substring() {
        let allow =
            Allowlist::parse("# audited\nL002 crates/core/src/sink.rs self.state.values()\n");
        let hit = LintFinding {
            rule: Rule::L002,
            file: "crates/core/src/sink.rs".into(),
            line: 4,
            text: "let _ = self.state.values().count();".into(),
        };
        assert!(allow.allows(&hit));
        let miss = LintFinding {
            text: "for (k, v) in &self.state {".into(),
            ..hit.clone()
        };
        assert!(!allow.allows(&miss));
    }

    #[test]
    fn stale_allowlist_entries_are_l010_findings() {
        let allow = Allowlist::parse(
            "# header comment\n\
             L002 crates/core/src/sink.rs self.state.values()\n\
             L006 crates/server/src/scheduler.rs work.wait(\n",
        );
        let live = vec![LintFinding {
            rule: Rule::L002,
            file: "crates/core/src/sink.rs".into(),
            line: 4,
            text: "let _ = self.state.values().count();".into(),
        }];
        let stale = allow.stale_entries(&live);
        assert_eq!(stale.len(), 1, "{stale:?}");
        assert_eq!(stale[0].rule, Rule::L010);
        assert_eq!(stale[0].file, "scripts/lint-allow.txt");
        assert_eq!(stale[0].line, 3, "line of the dead entry");
        assert!(stale[0].text.contains("work.wait("));
        // L010 itself is never allowlistable.
        assert!(!allow.allows(&stale[0]));
    }

    #[test]
    fn lint_files_runs_interprocedural_rules() {
        // L008: the panic is in a helper, reachable from process().
        let files = vec![
            (
                "crates/core/src/ops.rs".to_string(),
                "fn process(&mut self) { helper_step(); }\n".to_string(),
            ),
            (
                "crates/core/src/util.rs".to_string(),
                "fn helper_step() { cfg_val.unwrap(); }\n".to_string(),
            ),
        ];
        let f = lint_files(&files);
        let l008: Vec<_> = f.iter().filter(|x| x.rule == Rule::L008).collect();
        assert_eq!(l008.len(), 1, "{f:?}");
        assert_eq!(l008[0].file, "crates/core/src/util.rs");
        assert!(
            l008[0].text.contains("process -> helper_step"),
            "{}",
            l008[0].text
        );
    }

    #[test]
    fn lint_findings_are_sorted_and_deduped() {
        let mut f = vec![
            LintFinding {
                rule: Rule::L003,
                file: "b.rs".into(),
                line: 2,
                text: "x".into(),
            },
            LintFinding {
                rule: Rule::L001,
                file: "a.rs".into(),
                line: 9,
                text: "y".into(),
            },
            LintFinding {
                rule: Rule::L003,
                file: "b.rs".into(),
                line: 2,
                text: "x".into(),
            },
        ];
        sort_findings(&mut f);
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].file.as_str(), f[0].line), ("a.rs", 9));
        assert_eq!((f[1].file.as_str(), f[1].line), ("b.rs", 2));
    }
}
