//! Offline source lints: hand-rolled (zero registry dependencies) textual
//! checks enforcing repo rules that rustc/clippy cannot express.
//!
//! Rules:
//!
//! * **L001 `no-panic-hot`** — no `.unwrap()`, `.expect(`, or panic-family
//!   macros in the online-operator hot paths (`crates/core/src/ops.rs`,
//!   `ops_agg.rs`, `ops_join.rs`). A bad row must surface as an
//!   `EngineError` the driver can report, not abort the process mid-batch.
//! * **L002 `no-unordered-iter-output`** — no direct `HashMap`/`HashSet`
//!   iteration in files whose iteration order can reach a `Sink` or a
//!   `BatchReport` (`crates/core/src/registry.rs`, `sink.rs`,
//!   `crates/baselines/src/hda.rs`): two runs of the same query must
//!   produce byte-identical reports.
//! * **L003 `no-instant-outside-metrics`** — no `Instant` outside
//!   `crates/core/src/metrics.rs`; all timing goes through `Span` so the
//!   metrics layer stays the single clock authority.
//! * **L004 `fault-hook-ungated`** — every fault-injection hook
//!   (`inject_*` call) in `crates/core/src/*.rs` outside `faults.rs` must
//!   sit behind an armed-injector gate: a `Some(` match on the same
//!   logical line or within the two preceding ones (the window tolerates
//!   rustfmt wrapping an `if let Some(f) = …` header away from the call).
//!   A hook without a gate would fire even when the config carries no
//!   `FaultPlan` — i.e. in production — so L004 findings are **not**
//!   allowlistable.
//! * **L005 `instrumentation-coverage`** — every `fn process(` body in the
//!   operator hot-path files (the L001 file set) must open a trace span
//!   via `ctx.op_span(` before the next `fn `, so a traced batch timeline
//!   never silently folds an operator's time into its parent. The
//!   `OnlineOp` enum dispatcher (a pure `match self` delegation) is
//!   exempt.
//! * **L006 `no-unbounded-blocking`** — no unbounded blocking in the
//!   serving layer's scheduler/admission hot paths
//!   (`crates/server/src/scheduler.rs`, `session.rs`): no
//!   `thread::sleep`, no bare channel `.recv()`, no `Condvar` `.wait(`
//!   without a timeout (`.wait_timeout(` is the sanctioned form). A
//!   stalled or slow driver must never wedge admission or a polling
//!   client behind an unbounded park. The worker pool's park/unpark core
//!   is the one audited exception, allowlisted in
//!   `scripts/lint-allow.txt`.
//! * **L007 `no-row-materialization-in-kernels`** — no per-row `Value`
//!   materialization inside the columnar kernel modules (any file under a
//!   `src/kernels/` directory): no `.clone()`, `.to_vec()`, or
//!   `.to_owned()`. Kernels must work over typed column vectors and
//!   selection indices; cloning a `Value` per row silently reintroduces
//!   the row-at-a-time cost the columnar layer exists to remove. The
//!   row⇄batch facade (`kernels/facade.rs`) is the audited exception —
//!   materialization is its entire job — and is allowlisted.
//!
//! Lines inside `#[cfg(test)]` modules (everything from the first such
//! attribute to end of file — the repo convention keeps test modules last)
//! and `//` comment lines are not linted. Audited exceptions live in
//! `scripts/lint-allow.txt`, one per line:
//!
//! ```text
//! RULE  FILE-SUFFIX  SUBSTRING-OF-FLAGGED-LINE
//! ```

use crate::diag::Rule;
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source-lint finding.
#[derive(Clone, Debug)]
pub struct LintFinding {
    /// Violated rule.
    pub rule: Rule,
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The flagged source line, trimmed.
    pub text: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {}:{}: {}",
            self.rule, self.file, self.line, self.text
        )
    }
}

/// Parsed allowlist of audited exceptions.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String, String)>,
}

impl Allowlist {
    /// Parse allowlist text. Each non-comment line is
    /// `RULE<ws>FILE<ws>SUBSTRING` where SUBSTRING is the rest of the line.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let (Some(rule), Some(file)) = (parts.next(), parts.next()) else {
                continue;
            };
            let substr = parts.next().unwrap_or("").trim().to_string();
            entries.push((rule.to_string(), file.to_string(), substr));
        }
        Allowlist { entries }
    }

    /// Load from a file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> io::Result<Allowlist> {
        match fs::read_to_string(path) {
            Ok(text) => Ok(Allowlist::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(e),
        }
    }

    /// Whether `finding` matches an audited exception: rule equal, file a
    /// path-suffix match, and the entry substring contained in the flagged
    /// line. L004 findings are never allowed — an ungated fault hook is a
    /// release-reachability bug, not an auditable style exception.
    pub fn allows(&self, finding: &LintFinding) -> bool {
        if finding.rule == Rule::L004 {
            return false;
        }
        self.entries.iter().any(|(rule, file, substr)| {
            rule == finding.rule.id()
                && finding.file.ends_with(file.as_str())
                && finding.text.contains(substr.as_str())
        })
    }

    /// Number of entries (reporting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no exceptions are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

const L001_FILES: &[&str] = &[
    "crates/core/src/ops.rs",
    "crates/core/src/ops_agg.rs",
    "crates/core/src/ops_join.rs",
];

const L001_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

const L002_FILES: &[&str] = &[
    "crates/core/src/registry.rs",
    "crates/core/src/sink.rs",
    "crates/baselines/src/hda.rs",
];

/// The serving layer's scheduler/admission hot paths. `tcp.rs` is exempt:
/// socket reads legitimately block on the network.
const L006_FILES: &[&str] = &[
    "crates/server/src/scheduler.rs",
    "crates/server/src/session.rs",
];

/// Unbounded-blocking forms. `.wait(` deliberately does not match the
/// sanctioned `.wait_timeout(`, and `.recv()` does not match
/// `recv_timeout(`/`try_recv()`.
const L006_PATTERNS: &[&str] = &["thread::sleep", ".recv()", ".wait("];

/// Per-row materialization forms forbidden in kernel modules.
const L007_PATTERNS: &[&str] = &[".clone()", ".to_vec()", ".to_owned()"];

/// Lint one file's source. `rel_path` is repo-relative with forward
/// slashes; rules are dispatched on it.
pub fn lint_source(rel_path: &str, content: &str) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    let lines = logical_lines(content);
    let lines: Vec<(usize, &str)> = lines.iter().map(|(n, s)| (*n, s.as_str())).collect();

    if L001_FILES.contains(&rel_path) {
        for (no, line) in &lines {
            for pat in L001_PATTERNS {
                if line.contains(pat) {
                    findings.push(finding(Rule::L001, rel_path, *no, line));
                    break;
                }
            }
        }
    }

    if L001_FILES.contains(&rel_path) {
        findings.extend(l005_spanless_process(rel_path, &lines));
    }

    if L002_FILES.contains(&rel_path) {
        let tracked = tracked_hash_idents(&lines);
        for (no, line) in &lines {
            if tracked.iter().any(|id| unordered_iteration(line, id)) {
                findings.push(finding(Rule::L002, rel_path, *no, line));
            }
        }
    }

    if rel_path.starts_with("crates/core/src/") && rel_path != "crates/core/src/metrics.rs" {
        for (no, line) in &lines {
            if contains_word(line, "Instant") {
                findings.push(finding(Rule::L003, rel_path, *no, line));
            }
        }
    }

    if L006_FILES.contains(&rel_path) {
        for (no, line) in &lines {
            for pat in L006_PATTERNS {
                if line.contains(pat) {
                    findings.push(finding(Rule::L006, rel_path, *no, line));
                    break;
                }
            }
        }
    }

    if rel_path.contains("/src/kernels/") {
        for (no, line) in &lines {
            for pat in L007_PATTERNS {
                if line.contains(pat) {
                    findings.push(finding(Rule::L007, rel_path, *no, line));
                    break;
                }
            }
        }
    }

    if rel_path.starts_with("crates/core/src/") && rel_path != "crates/core/src/faults.rs" {
        for (k, (no, line)) in lines.iter().enumerate() {
            if !line.contains("inject_") {
                continue;
            }
            let gated = (k.saturating_sub(2)..=k).any(|p| lines[p].1.contains("Some("));
            if !gated {
                findings.push(finding(Rule::L004, rel_path, *no, line));
            }
        }
    }

    findings
}

/// L005: every `fn process(` body in the operator hot-path files must open
/// a trace span (`.op_span(`) before the next `fn `, so the causal trace
/// tree has no silent gaps. The `OnlineOp` enum dispatcher — whose body is
/// a `match self` delegating to the variant impls, each of which opens its
/// own span — is exempt.
fn l005_spanless_process(rel_path: &str, lines: &[(usize, &str)]) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    for (k, (no, line)) in lines.iter().enumerate() {
        if !line.contains("fn process(") {
            continue;
        }
        let body_end = lines[k + 1..]
            .iter()
            .position(|(_, l)| l.contains("fn "))
            .map(|p| k + 1 + p)
            .unwrap_or(lines.len());
        let body = &lines[k..body_end];
        let spanned = body.iter().any(|(_, l)| l.contains(".op_span("));
        let dispatcher = body.iter().any(|(_, l)| l.contains("match self"));
        if !spanned && !dispatcher {
            findings.push(finding(Rule::L005, rel_path, *no, line));
        }
    }
    findings
}

/// Lint every `crates/**/*.rs` file under `repo_root`. Files are visited in
/// sorted order so the report itself is deterministic.
pub fn lint_tree(repo_root: &Path) -> io::Result<Vec<LintFinding>> {
    let mut files = Vec::new();
    collect_rs_files(&repo_root.join("crates"), &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(repo_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &content));
    }
    Ok(findings)
}

/// The repo root, located from this crate's manifest directory. Valid for
/// in-workspace builds (which is the only place the lints run).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Per-rule finding counts, zero-filled across all lint rules.
pub fn lint_counts(findings: &[LintFinding]) -> Vec<(Rule, usize)> {
    Rule::lint_rules()
        .iter()
        .map(|&r| (r, findings.iter().filter(|f| f.rule == r).count()))
        .collect()
}

fn finding(rule: Rule, file: &str, line: usize, text: &str) -> LintFinding {
    LintFinding {
        rule,
        file: file.to_string(),
        line,
        text: text.trim().to_string(),
    }
}

/// Lintable logical lines: `(1-based number, text)` for every line before
/// the first `#[cfg(test)]` whose trimmed form is not a `//` comment.
/// Method-chain continuations (lines starting with `.`) are folded into the
/// previous logical line so `self.state\n    .values()` still matches; the
/// reported line number is the chain's first line.
fn logical_lines(content: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        match out.last_mut() {
            Some((_, prev)) if trimmed.starts_with('.') => prev.push_str(trimmed.trim_end()),
            _ => out.push((i + 1, line.trim_end().to_string())),
        }
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Whether `line` contains `word` delimited by non-identifier characters.
fn contains_word(line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(line[..at].chars().next_back().unwrap_or(' '));
        let after = at + word.len();
        let after_ok = !line[after..].chars().next().is_some_and(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

/// Identifier ending immediately before byte offset `end` (declaration
/// patterns like `name: HashMap<` or `name = HashMap::new()`).
fn ident_before(line: &str, end: usize) -> Option<String> {
    let head = line[..end].trim_end();
    let tail: String = head
        .chars()
        .rev()
        .take_while(|&c| is_ident_char(c))
        .collect();
    if tail.is_empty() {
        None
    } else {
        Some(tail.chars().rev().collect())
    }
}

/// Identifiers declared with a hash-based container type in this file.
fn tracked_hash_idents(lines: &[(usize, &str)]) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for (_, line) in lines {
        for pat in [": HashMap<", ": HashSet<"] {
            if let Some(pos) = line.find(pat) {
                if let Some(id) = ident_before(line, pos) {
                    idents.insert(id);
                }
            }
        }
        for pat in ["= HashMap::", "= HashSet::"] {
            if let Some(pos) = line.find(pat) {
                if let Some(id) = ident_before(line, pos) {
                    idents.insert(id);
                }
            }
        }
    }
    idents
}

/// Whether `line` iterates the tracked hash container `id` directly
/// (method-call or for-loop forms). Order-revealing accessors only —
/// `get`/`insert`/`contains_key` are point lookups and stay legal.
fn unordered_iteration(line: &str, id: &str) -> bool {
    const METHODS: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".into_iter()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain(",
    ];
    for m in METHODS {
        let pat = format!("{id}{m}");
        if find_with_left_boundary(line, &pat) {
            return true;
        }
    }
    for prefix in ["in &mut self.", "in &self.", "in self.", "in &", "in "] {
        let pat = format!("{prefix}{id}");
        let mut start = 0;
        while let Some(pos) = line[start..].find(&pat) {
            let at = start + pos;
            let before_ok =
                at == 0 || !is_ident_char(line[..at].chars().next_back().unwrap_or(' '));
            let after = at + pat.len();
            let after_ok = !line[after..]
                .chars()
                .next()
                .is_some_and(|c| is_ident_char(c) || c == '.');
            if before_ok && after_ok {
                return true;
            }
            start = after;
        }
    }
    false
}

/// Substring match requiring a non-identifier character (or start of line)
/// immediately before the match, so tracked ident `state` does not flag
/// `mystate.iter()`.
fn find_with_left_boundary(line: &str, pat: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(pat) {
        let at = start + pos;
        if at == 0 || !is_ident_char(line[..at].chars().next_back().unwrap_or(' ')) {
            return true;
        }
        start = at + pat.len();
    }
    false
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l001_flags_unwrap_not_unwrap_or() {
        let src = "fn f() {\n    let x = y.unwrap();\n    let z = y.unwrap_or(0);\n}\n";
        let f = lint_source("crates/core/src/ops.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::L001);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn l001_skips_comments_and_tests() {
        let src = "// a.unwrap() in a comment\nfn f() {}\n#[cfg(test)]\nmod t { fn g() { x.unwrap(); } }\n";
        assert!(lint_source("crates/core/src/ops_agg.rs", src).is_empty());
    }

    #[test]
    fn l001_flags_panic_macros_not_strings() {
        let src = "fn f() { unreachable!(\"bad\"); }\nfn g() { let s = \"panicked: x\"; }\n";
        let f = lint_source("crates/core/src/ops_join.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn l002_flags_tracked_map_iteration() {
        let src = "struct S { state: HashMap<u32, u32> }\n\
                   impl S {\n\
                   fn f(&self) { for (k, v) in &self.state { let _ = (k, v); } }\n\
                   fn g(&self) { let _ = self.state.values().count(); }\n\
                   fn h(&self) { let _ = self.state.get(&1); }\n\
                   }\n";
        let f = lint_source("crates/core/src/sink.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert_eq!(f[1].line, 4);
    }

    #[test]
    fn l002_respects_ident_boundaries() {
        let src = "struct S { state: HashMap<u32, u32>, mystate: Vec<u32> }\n\
                   fn f(s: &S) { for x in &s.mystate { let _ = x; } }\n";
        assert!(lint_source("crates/core/src/registry.rs", src).is_empty());
    }

    #[test]
    fn l003_flags_instant_outside_metrics_only() {
        let src = "use std::time::Instant;\n";
        assert_eq!(lint_source("crates/core/src/driver.rs", src).len(), 1);
        assert!(lint_source("crates/core/src/metrics.rs", src).is_empty());
        assert!(lint_source("crates/engine/src/expr.rs", src).is_empty());
    }

    #[test]
    fn l004_flags_ungated_fault_hooks_only() {
        let ungated = "fn f(i: &FaultInjector) {\n    i.inject_worker_panic(b);\n}\n";
        let f = lint_source("crates/core/src/ops_agg.rs", ungated);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::L004);
        assert_eq!(f[0].line, 2);
        // A Some( gate up to two logical lines back (rustfmt wrapping)
        // legitimizes the hook.
        let gated = "fn f() {\n    if let Some(f) = faults {\n        f.inject_worker_panic(b);\n    }\n}\n";
        assert!(lint_source("crates/core/src/ops_agg.rs", gated).is_empty());
        // Hook bodies live in faults.rs; the rule exempts it.
        assert!(lint_source("crates/core/src/faults.rs", ungated).is_empty());
        // Other crates are out of scope.
        assert!(lint_source("crates/bench/src/lib.rs", ungated).is_empty());
    }

    #[test]
    fn l005_flags_spanless_process_bodies() {
        let bad = "impl ScanOp {\n\
                   fn process(&mut self, ctx: &mut BatchCtx<'_>) -> R {\n\
                   let out = BatchData::empty(s);\n\
                   Ok(out)\n\
                   }\n\
                   fn other(&self) {}\n\
                   }\n";
        let f = lint_source("crates/core/src/ops.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::L005);
        assert_eq!(f[0].line, 2);
        // Opening a span legitimizes the body.
        let good = bad.replace(
            "let out = BatchData::empty(s);",
            "let sp = ctx.op_span(\"Scan\");\nlet out = BatchData::empty(s);",
        );
        assert!(lint_source("crates/core/src/ops.rs", &good).is_empty());
        // The enum dispatcher (match self delegation) is exempt.
        let dispatch = "impl OnlineOp {\n\
                        pub fn process(&mut self, ctx: &mut BatchCtx<'_>) -> R {\n\
                        match self {\n\
                        OnlineOp::Scan(op) => op.process(ctx),\n\
                        }\n\
                        }\n\
                        }\n";
        assert!(lint_source("crates/core/src/ops_join.rs", dispatch).is_empty());
        // Other files are out of scope.
        assert!(lint_source("crates/core/src/driver.rs", bad).is_empty());
    }

    #[test]
    fn l006_flags_unbounded_blocking_in_server_hot_paths() {
        let src = "fn park(&self) {\n\
                   let g = self.work.wait(st);\n\
                   let x = rx.recv();\n\
                   thread::sleep(d);\n\
                   }\n";
        let f = lint_source("crates/server/src/scheduler.rs", src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::L006));
        let src2 = "fn f() { let x = rx.recv(); }\n";
        assert_eq!(lint_source("crates/server/src/session.rs", src2).len(), 1);
        // The bounded forms are sanctioned.
        let ok = "fn f() {\n\
                  let (g, _) = cv.wait_timeout(st, d);\n\
                  let r = handle.try_recv();\n\
                  let r2 = rx.recv_timeout(d);\n\
                  }\n";
        assert!(lint_source("crates/server/src/scheduler.rs", ok).is_empty());
        assert!(lint_source("crates/server/src/session.rs", ok).is_empty());
        // The TCP front-end (network blocking) is out of scope.
        let blocking = "fn f() { let g = cv.wait(st); }\n";
        assert!(lint_source("crates/server/src/tcp.rs", blocking).is_empty());
        assert!(lint_source("crates/core/src/driver.rs", blocking).is_empty());
    }

    #[test]
    fn l006_is_allowlistable_for_the_park_core() {
        let allow = Allowlist::parse("L006 crates/server/src/scheduler.rs work.wait(");
        let hit = LintFinding {
            rule: Rule::L006,
            file: "crates/server/src/scheduler.rs".into(),
            line: 1,
            text: "st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);".into(),
        };
        assert!(allow.allows(&hit));
        let other = LintFinding {
            text: "let g = self.client.wait(st);".into(),
            ..hit.clone()
        };
        assert!(!allow.allows(&other), "only the park core is audited");
    }

    #[test]
    fn l007_flags_value_materialization_in_kernels() {
        let src = "fn gather(col: &Column) {\n\
                   let v = cells[i].clone();\n\
                   let owned = dict.to_vec();\n\
                   let s = name.to_owned();\n\
                   let ok = col.len();\n\
                   }\n";
        let f = lint_source("crates/relation/src/kernels/filter.rs", src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::L007));
        // Comments and test modules are exempt, like every textual lint.
        let commented = "// values.clone() for the reference path\nfn f() {}\n";
        assert!(lint_source("crates/relation/src/kernels/fold.rs", commented).is_empty());
        // Files outside kernels/ are out of scope.
        assert!(lint_source("crates/relation/src/columnar.rs", src).is_empty());
        assert!(lint_source("crates/core/src/driver.rs", src).is_empty());
    }

    #[test]
    fn l007_is_allowlistable_for_the_facade() {
        let allow = Allowlist::parse("L007 crates/relation/src/kernels/facade.rs .clone()");
        let hit = LintFinding {
            rule: Rule::L007,
            file: "crates/relation/src/kernels/facade.rs".into(),
            line: 1,
            text: "Batch::from_rows(rel.schema().clone(), rel.rows())".into(),
        };
        assert!(allow.allows(&hit));
        let other = LintFinding {
            file: "crates/relation/src/kernels/filter.rs".into(),
            ..hit.clone()
        };
        assert!(!allow.allows(&other), "only the facade is audited");
    }

    #[test]
    fn l004_is_never_allowlistable() {
        let allow = Allowlist::parse("L004 crates/core/src/ops.rs inject_worker_panic");
        let hit = LintFinding {
            rule: Rule::L004,
            file: "crates/core/src/ops.rs".into(),
            line: 1,
            text: "f.inject_worker_panic(b);".into(),
        };
        assert!(!allow.allows(&hit), "L004 must ignore allowlist entries");
    }

    #[test]
    fn allowlist_matches_rule_file_and_substring() {
        let allow =
            Allowlist::parse("# audited\nL002 crates/core/src/sink.rs self.state.values()\n");
        let hit = LintFinding {
            rule: Rule::L002,
            file: "crates/core/src/sink.rs".into(),
            line: 4,
            text: "let _ = self.state.values().count();".into(),
        };
        assert!(allow.allows(&hit));
        let miss = LintFinding {
            text: "for (k, v) in &self.state {".into(),
            ..hit.clone()
        };
        assert!(!allow.allows(&miss));
    }
}
