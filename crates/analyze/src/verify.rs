//! The static plan verifier: cross-checks the rewriter's configuration of
//! the online operator tree against independently derived §4.1 tags.
//!
//! Rules (see [`Rule`] for the catalogue):
//!
//! * **V001** — every select over uncertain attributes is configured for
//!   variation-range partitioning (§5), and only those.
//! * **V002** — every uA-tagged aggregate output is emitted as a lineage
//!   `Ref` (§6.1), and only those (the emission condition is
//!   `input_tuple_uncertain || arg_uncertain[c]`, so the configured flags
//!   are checked against the derived tags).
//! * **V003** — projection modes preserve lineage: no `Plain` (eager) mode
//!   over an uncertain column, no thunk/ref mode over a certain one.
//! * **V004** — no strict operator consumes uncertain attributes: join and
//!   semi-join key expressions and group-by columns must be over certain
//!   columns (§3.3); this is also what keeps folded-lineage thunks
//!   (`Value::Pending`) out of strict hash/comparison consumers.
//! * **V005** — join/semi-join keys are deterministic: no nondeterministic
//!   UDF anywhere in a key expression (§3.3).
//! * **V006** — result scaling matches the derived stream tags: aggregate
//!   `scale_stream` equals the subtree's reads-stream tag and the sink's
//!   `stream_factor` equals the derived root factor (§2).
//! * **V007** — delta-update safety closure for recovery (§5.1): every
//!   operator whose §4.2/§5.2 state must survive replay registers
//!   checkpoint state, and §4.2-stateless operators register none.
//! * **V008** — the rewriter's recorded root annotation agrees with the
//!   derived root tags.
//! * **V009** — the columnar aggregate fast path is never eligible for
//!   uncertain-arg aggregates: a compiled `FastPlan` together with any
//!   configured-or-derived uncertain argument would fold fast and bypass
//!   §6.1 lineage-ref emission.
//! * **V010** — recovery-spine closure (§5.1): along every root→streamed-
//!   scan spine, each operator whose state must survive replay registers
//!   checkpoint state and the streamed scan checkpoints its cursor, so a
//!   simulated variation-range failure at any spine depth can be replayed.

use crate::diag::{Diagnostic, Rule};
use crate::tags::{derive, expr_uncertain, Tags};
use iolap_core::{rewrite, OnlineOp, OnlineQuery, RewriteError};
use iolap_engine::{Expr, PlannedQuery};
use std::collections::HashSet;

/// Verify a rewritten online query. Returns every rule violation found;
/// an empty vector means the plan is verifier-clean.
pub fn verify(q: &OnlineQuery) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let root_tags = check(&q.root, &q.root.kind(), &mut diags);

    // V006 (sink half): the sink must scale output rows by m_i once per
    // streamed base-row factor reaching the output unaggregated.
    if q.sink.stream_factor != root_tags.stream_factor {
        diags.push(Diagnostic {
            rule: Rule::V006,
            path: "Sink".to_string(),
            column: None,
            message: format!(
                "sink stream_factor is {} but derived root factor is {}",
                q.sink.stream_factor, root_tags.stream_factor
            ),
        });
    }

    // V008: the annotation the rewriter recorded (and the driver scales by)
    // must agree with the independent derivation.
    let ann = &q.root_annotation;
    if ann.attr_uncertain != root_tags.attr_uncertain {
        diags.push(Diagnostic {
            rule: Rule::V008,
            path: q.root.kind(),
            column: None,
            message: format!(
                "root attr_uncertain recorded as {:?}, derived {:?}",
                ann.attr_uncertain, root_tags.attr_uncertain
            ),
        });
    }
    if ann.tuple_uncertain != root_tags.tuple_uncertain {
        diags.push(Diagnostic {
            rule: Rule::V008,
            path: q.root.kind(),
            column: None,
            message: format!(
                "root tuple_uncertain recorded as {}, derived {}",
                ann.tuple_uncertain, root_tags.tuple_uncertain
            ),
        });
    }
    if ann.reads_stream != root_tags.reads_stream {
        diags.push(Diagnostic {
            rule: Rule::V008,
            path: q.root.kind(),
            column: None,
            message: format!(
                "root reads_stream recorded as {}, derived {}",
                ann.reads_stream, root_tags.reads_stream
            ),
        });
    }

    // V010: recovery-spine closure — every operator on a root→streamed-scan
    // spine can be replayed after a simulated range failure at its depth.
    check_v010(&q.root, &q.root.kind(), &mut diags);
    diags
}

/// Rewrite `pq` for online execution over `stream_table` and verify the
/// result. Convenience entry point for test suites and the `experiments
/// verify-plans` subcommand.
pub fn verify_planned(
    pq: &PlannedQuery,
    stream_table: &str,
) -> Result<Vec<Diagnostic>, RewriteError> {
    let streamed: HashSet<String> = [stream_table.to_ascii_lowercase()].into();
    let oq = rewrite(pq, &streamed)?;
    Ok(verify(&oq))
}

/// Hook-compatible wrapper: renders violations into one report string.
pub fn verify_report(q: &OnlineQuery) -> Result<(), String> {
    let diags = verify(q);
    if diags.is_empty() {
        Ok(())
    } else {
        Err(diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n"))
    }
}

/// Install the verifier into the core driver's debug-build hook: every
/// `IolapDriver` constructed afterwards verifies its rewritten plan before
/// batch 0 (debug builds only). Idempotent and process-wide.
pub fn install() {
    iolap_core::install_plan_verifier(verify_report);
}

/// Per-rule violation counts over `diags`, zero-filled across all verifier
/// rules (so "0 violations" is an explicit, trackable record).
pub fn rule_counts(diags: &[Diagnostic]) -> Vec<(Rule, usize)> {
    Rule::verifier_rules()
        .iter()
        .map(|&r| (r, diags.iter().filter(|d| d.rule == r).count()))
        .collect()
}

fn uncertain_key_cols(keys: &[Expr], attrs: &[bool]) -> Vec<usize> {
    let mut cols = Vec::new();
    for k in keys {
        k.referenced_columns(&mut cols);
    }
    cols.sort_unstable();
    cols.dedup();
    cols.into_iter()
        .filter(|&c| attrs.get(c).copied().unwrap_or(false))
        .collect()
}

fn check_keys(side: &str, keys: &[Expr], attrs: &[bool], path: &str, diags: &mut Vec<Diagnostic>) {
    for c in uncertain_key_cols(keys, attrs) {
        diags.push(Diagnostic {
            rule: Rule::V004,
            path: path.to_string(),
            column: Some(c),
            message: format!(
                "{side} key references uncertain column {c} — a strict operator \
                 would consume a lineage ref or folded-lineage thunk (§3.3)"
            ),
        });
    }
    for k in keys {
        let mut udfs = Vec::new();
        k.nondeterministic_udfs(&mut udfs);
        for name in udfs {
            diags.push(Diagnostic {
                rule: Rule::V005,
                path: path.to_string(),
                column: None,
                message: format!("{side} key calls nondeterministic UDF {name} (§3.3)"),
            });
        }
    }
}

/// Whether §4.2/§5.1 require this operator to snapshot state into
/// checkpoints, given the *derived* tags of its children. `None` means
/// "must be stateless" (PROJECT/UNION).
fn required_checkpoint_state(op: &OnlineOp, child_tags: &[&Tags]) -> Option<bool> {
    match op {
        // A scan always carries its stream cursor / one-shot dimension
        // flag across replays.
        OnlineOp::Scan(_) => Some(true),
        OnlineOp::Select(s) => {
            let derived = child_tags
                .first()
                .map(|t| expr_uncertain(&s.predicate, &t.attr_uncertain))
                .unwrap_or(false);
            Some(derived)
        }
        OnlineOp::Project(_) | OnlineOp::Union(_) => None,
        OnlineOp::Join(_) | OnlineOp::SemiJoin(_) | OnlineOp::Aggregate(_) => Some(true),
    }
}

/// V010: returns whether `op`'s subtree contains a streamed scan; when it
/// does, `op` sits on a recovery spine and must satisfy the §5.1 closure —
/// replay after a variation-range failure at any depth below it restores
/// its state from checkpoints. Tags are re-derived locally (plans are
/// small; the extra traversal keeps this pass independent of `check`).
fn check_v010(op: &OnlineOp, path: &str, diags: &mut Vec<Diagnostic>) -> bool {
    let children = op.children();
    let mut on_spine = false;
    for c in &children {
        let child_path = format!("{path}/{}", c.kind());
        on_spine |= check_v010(c, &child_path, diags);
    }
    if let OnlineOp::Scan(s) = op {
        on_spine |= s.streamed;
    }
    if !on_spine {
        return false;
    }
    let registered = op.checkpoint_state();
    if let OnlineOp::Scan(s) = op {
        if s.streamed && !registered.iter().any(|k| k.contains("cursor")) {
            diags.push(Diagnostic {
                rule: Rule::V010,
                path: path.to_string(),
                column: None,
                message: "streamed scan does not checkpoint its cursor — replay after \
                          a range failure would rescan or skip delivered rows (§5.1)"
                    .to_string(),
            });
        }
        return true;
    }
    let child_tags: Vec<Tags> = children.iter().map(|c| derive(c)).collect();
    let child_refs: Vec<&Tags> = child_tags.iter().collect();
    if required_checkpoint_state(op, &child_refs) == Some(true) && registered.is_empty() {
        diags.push(Diagnostic {
            rule: Rule::V010,
            path: path.to_string(),
            column: None,
            message: "operator on the recovery spine registers no checkpoint state — \
                      a simulated range failure below it could not be replayed (§5.1)"
                .to_string(),
        });
    }
    true
}

fn check(op: &OnlineOp, path: &str, diags: &mut Vec<Diagnostic>) -> Tags {
    let children = op.children();
    let child_paths: Vec<String> = children
        .iter()
        .map(|c| format!("{path}/{}", c.kind()))
        .collect();
    let child_tags: Vec<Tags> = children
        .iter()
        .zip(child_paths.iter())
        .map(|(c, p)| check(c, p, diags))
        .collect();
    let child_refs: Vec<&Tags> = child_tags.iter().collect();

    match op {
        OnlineOp::Scan(_) | OnlineOp::Union(_) => {}
        OnlineOp::Select(s) => {
            let derived = expr_uncertain(&s.predicate, &child_refs[0].attr_uncertain);
            if s.uncertain_pred != derived {
                diags.push(Diagnostic {
                    rule: Rule::V001,
                    path: path.to_string(),
                    column: None,
                    message: if derived {
                        "predicate reads uncertain attributes but the select is not \
                         configured for variation-range partitioning (§5)"
                            .to_string()
                    } else {
                        "select is configured for variation-range partitioning but its \
                         predicate reads only certain attributes"
                            .to_string()
                    },
                });
            }
        }
        OnlineOp::Project(p) => {
            use iolap_core::ops::ProjMode;
            for (c, mode) in p.modes.iter().enumerate() {
                let (label, derived) = match mode {
                    ProjMode::Plain(e) => {
                        ("Plain", expr_uncertain(e, &child_refs[0].attr_uncertain))
                    }
                    ProjMode::PassCell(i) => (
                        "PassCell",
                        child_refs[0]
                            .attr_uncertain
                            .get(*i)
                            .copied()
                            .unwrap_or(false),
                    ),
                    ProjMode::Thunk(e) => (
                        "Thunk",
                        expr_uncertain(e.as_ref(), &child_refs[0].attr_uncertain),
                    ),
                };
                let lineage_preserving = !matches!(mode, ProjMode::Plain(_));
                if derived && !lineage_preserving {
                    diags.push(Diagnostic {
                        rule: Rule::V003,
                        path: path.to_string(),
                        column: Some(c),
                        message: "Plain mode over a derived-uncertain column would \
                                  eagerly evaluate and drop lineage (§6.1)"
                            .to_string(),
                    });
                } else if !derived && lineage_preserving {
                    diags.push(Diagnostic {
                        rule: Rule::V003,
                        path: path.to_string(),
                        column: Some(c),
                        message: format!(
                            "{label} mode over a derived-certain column is spurious lineage"
                        ),
                    });
                }
            }
        }
        OnlineOp::Join(j) => {
            check_keys(
                "left",
                &j.left_keys,
                &child_refs[0].attr_uncertain,
                path,
                diags,
            );
            check_keys(
                "right",
                &j.right_keys,
                &child_refs[1].attr_uncertain,
                path,
                diags,
            );
        }
        OnlineOp::SemiJoin(j) => {
            check_keys(
                "left",
                &j.left_keys,
                &child_refs[0].attr_uncertain,
                path,
                diags,
            );
            check_keys(
                "right",
                &j.right_keys,
                &child_refs[1].attr_uncertain,
                path,
                diags,
            );
        }
        OnlineOp::Aggregate(a) => {
            let input = child_refs[0];
            for &g in &a.group_cols {
                if input.attr_uncertain.get(g).copied().unwrap_or(false) {
                    diags.push(Diagnostic {
                        rule: Rule::V004,
                        path: path.to_string(),
                        column: Some(g),
                        message: format!("group-by column {g} is derived-uncertain (§3.3)"),
                    });
                }
            }
            if a.input_tuple_uncertain != input.tuple_uncertain {
                diags.push(Diagnostic {
                    rule: Rule::V002,
                    path: path.to_string(),
                    column: None,
                    message: format!(
                        "input_tuple_uncertain configured as {} but derived u# is {} — \
                         aggregate outputs would be {} lineage refs (§6.1)",
                        a.input_tuple_uncertain,
                        input.tuple_uncertain,
                        if input.tuple_uncertain {
                            "missing"
                        } else {
                            "spurious"
                        }
                    ),
                });
            }
            for (c, call) in a.aggs.iter().enumerate() {
                let derived = expr_uncertain(&call.input, &input.attr_uncertain);
                let configured = a.arg_uncertain.get(c).copied().unwrap_or(false);
                if configured != derived {
                    diags.push(Diagnostic {
                        rule: Rule::V002,
                        path: path.to_string(),
                        column: Some(a.group_cols.len() + c),
                        message: format!(
                            "arg_uncertain[{c}] configured as {configured} but the \
                             argument's derived uA is {derived}"
                        ),
                    });
                }
            }
            if a.scale_stream != input.reads_stream {
                diags.push(Diagnostic {
                    rule: Rule::V006,
                    path: path.to_string(),
                    column: None,
                    message: format!(
                        "scale_stream configured as {} but the subtree's derived \
                         reads_stream is {} — extensive outputs would be scaled wrongly (§2)",
                        a.scale_stream, input.reads_stream
                    ),
                });
            }
            // V009: a compiled columnar fast plan must never coexist with an
            // uncertain aggregate argument (configured or derived) — the
            // fast fold bypasses lineage-ref emission (§6.1).
            if a.has_fast_plan() {
                for (c, call) in a.aggs.iter().enumerate() {
                    let configured = a.arg_uncertain.get(c).copied().unwrap_or(false);
                    let derived = expr_uncertain(&call.input, &input.attr_uncertain);
                    if configured || derived {
                        diags.push(Diagnostic {
                            rule: Rule::V009,
                            path: path.to_string(),
                            column: Some(a.group_cols.len() + c),
                            message: format!(
                                "columnar fast path is eligible but aggregate argument \
                                 {c} is uncertain ({}) — the fast fold would bypass \
                                 lineage-ref emission (§6.1)",
                                if configured && derived {
                                    "configured and derived"
                                } else if configured {
                                    "configured"
                                } else {
                                    "derived"
                                }
                            ),
                        });
                    }
                }
            }
        }
    }

    // V007: checkpoint-state closure.
    let registered = op.checkpoint_state();
    match required_checkpoint_state(op, &child_refs) {
        Some(true) if registered.is_empty() => diags.push(Diagnostic {
            rule: Rule::V007,
            path: path.to_string(),
            column: None,
            message: "operator state must survive recovery replay (§5.1) but no \
                      checkpoint state is registered"
                .to_string(),
        }),
        None if !registered.is_empty() => diags.push(Diagnostic {
            rule: Rule::V007,
            path: path.to_string(),
            column: None,
            message: format!("§4.2-stateless operator registers checkpoint state {registered:?}"),
        }),
        _ => {}
    }

    // Re-derive this node's tags from the children (structure only).
    derive_with(op, child_tags)
}

/// Same transfer rules as [`derive`], but reusing already-derived child
/// tags so the traversal stays linear.
fn derive_with(op: &OnlineOp, child_tags: Vec<Tags>) -> Tags {
    match op {
        // Leaf and n-ary cases fall back to the plain derivation (Scan has
        // no children; Union recursion is cheap and keeps one code path).
        OnlineOp::Scan(_) | OnlineOp::Union(_) => derive(op),
        OnlineOp::Select(s) => {
            let child = child_tags.into_iter().next().expect("select has one child");
            let pred_uncertain = expr_uncertain(&s.predicate, &child.attr_uncertain);
            Tags {
                tuple_uncertain: child.tuple_uncertain || pred_uncertain,
                ..child
            }
        }
        OnlineOp::Project(p) => {
            use iolap_core::ops::ProjMode;
            let child = child_tags
                .into_iter()
                .next()
                .expect("project has one child");
            let attr_uncertain = p
                .modes
                .iter()
                .map(|m| match m {
                    ProjMode::Plain(e) => expr_uncertain(e, &child.attr_uncertain),
                    ProjMode::Thunk(e) => expr_uncertain(e.as_ref(), &child.attr_uncertain),
                    ProjMode::PassCell(i) => child.attr_uncertain.get(*i).copied().unwrap_or(false),
                })
                .collect();
            Tags {
                attr_uncertain,
                ..child
            }
        }
        OnlineOp::Join(_) => {
            let mut it = child_tags.into_iter();
            let l = it.next().expect("join has a left child");
            let r = it.next().expect("join has a right child");
            let mut attr_uncertain = l.attr_uncertain;
            attr_uncertain.extend(r.attr_uncertain.iter().copied());
            Tags {
                attr_uncertain,
                tuple_uncertain: l.tuple_uncertain || r.tuple_uncertain,
                reads_stream: l.reads_stream || r.reads_stream,
                stream_factor: l.stream_factor + r.stream_factor,
            }
        }
        OnlineOp::SemiJoin(_) => {
            let mut it = child_tags.into_iter();
            let l = it.next().expect("semi-join has a left child");
            let r = it.next().expect("semi-join has a right child");
            Tags {
                attr_uncertain: l.attr_uncertain,
                tuple_uncertain: l.tuple_uncertain || r.tuple_uncertain,
                reads_stream: l.reads_stream || r.reads_stream,
                stream_factor: l.stream_factor,
            }
        }
        OnlineOp::Aggregate(a) => {
            let child = child_tags
                .into_iter()
                .next()
                .expect("aggregate has one child");
            let mut attr_uncertain = vec![false; a.group_cols.len()];
            for call in &a.aggs {
                attr_uncertain.push(
                    child.tuple_uncertain || expr_uncertain(&call.input, &child.attr_uncertain),
                );
            }
            Tags {
                attr_uncertain,
                tuple_uncertain: child.tuple_uncertain,
                reads_stream: child.reads_stream,
                stream_factor: 0,
            }
        }
    }
}
