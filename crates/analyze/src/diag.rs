//! Structured diagnostics shared by the plan verifier and the source lints.

use std::fmt;

/// Every rule the analyzer can report. `V…` rules come from the static plan
/// verifier (independent re-derivation of the §4.1 uncertainty tags over the
/// rewritten online operator tree, cross-checked against the rewriter's
/// configuration); `L…` rules come from the offline source lints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Select over uncertain attributes not configured for variation-range
    /// partitioning (§5), or spuriously configured over certain attributes.
    V001,
    /// Aggregate lineage configuration disagrees with the derived tags: an
    /// output that must be a lineage `Ref` (§6.1) would be emitted plain, or
    /// a deterministic output would be wrapped in a ref.
    V002,
    /// Projection mode disagrees with the derived column tags: a `Plain`
    /// mode would eagerly evaluate (and drop lineage from) an uncertain
    /// column, or a lineage-preserving mode wraps a certain column.
    V003,
    /// A strict operator consumes uncertain attributes: join/semi-join keys
    /// or group-by columns over uncertain (possibly thunked) values (§3.3).
    V004,
    /// Join/semi-join key expression invokes a nondeterministic UDF (§3.3:
    /// keys must be deterministic under sampling).
    V005,
    /// Result-scaling configuration disagrees with the derived stream tags:
    /// aggregate `scale_stream` or sink `stream_factor` mismatch (§2's
    /// `Q(D_i, m_i)` scaling).
    V006,
    /// Checkpoint-state mismatch (§4.2/§5.1): an operator whose state must
    /// survive recovery replay registers none, or a §4.2-stateless operator
    /// (PROJECT/UNION) claims checkpoint state.
    V007,
    /// Root annotation cross-check: the rewriter's recorded root tags
    /// disagree with the independently derived root tags.
    V008,
    /// The columnar aggregate fast path (`FastPlan` in `ops_agg.rs`) must
    /// never be eligible when any aggregate argument is uncertain: the
    /// fast fold bypasses lineage-ref emission, so an uncertain argument
    /// folded fast would silently drop §6.1 lineage.
    V009,
    /// Recovery-closure survival (§5.1): along every root→streamed-scan
    /// spine, each operator whose state must survive replay registers
    /// checkpoint state and the streamed scan checkpoints its cursor, so
    /// a variation-range failure at any depth can be replayed.
    V010,
    /// No `unwrap()`/`expect()`/panic macros in `crates/core/src/ops*.rs`
    /// hot paths — errors must propagate as `EngineError`.
    L001,
    /// No direct `HashMap`/`HashSet` iteration in files whose iteration
    /// order can reach a `Sink` or `BatchReport` (determinism).
    L002,
    /// No `Instant::now()` outside `metrics.rs` — all timing goes through
    /// `iolap_core::metrics::Span`.
    L003,
    /// Fault-injection hooks (`inject_*` calls) outside
    /// `crates/core/src/faults.rs` must sit behind an armed-injector gate
    /// (a `Some(` match on the hook's line or within the two preceding
    /// logical lines), so no hook is reachable unless the config carries a
    /// `FaultPlan`. Deliberately *not* allowlistable: an ungated hook in a
    /// release binary is never an audited exception.
    L004,
    /// Instrumentation coverage: every `OnlineOp::process` implementation
    /// in the operator hot-path files must open a trace span
    /// (`ctx.op_span(`) so the causal trace tree never has silent gaps —
    /// a batch timeline with an untraced operator misattributes that
    /// operator's time to its parent.
    L005,
    /// No unbounded blocking in the serving layer's scheduler/admission hot
    /// paths (`crates/server/src/{scheduler,session}.rs`): no
    /// `thread::sleep`, no bare channel `recv()`, no `Condvar::wait`
    /// without timeout. A stalled driver must never be able to wedge a
    /// client or the admission path — every wait is deadline-bounded. The
    /// sole audited exception is the worker pool's park/unpark core
    /// (allowlisted in `scripts/lint-allow.txt`), which is woken on every
    /// state transition by construction.
    L006,
    /// No per-row `Value` materialization in the columnar kernel modules
    /// (`src/kernels/`): no `.clone()`, `.to_vec()`, or `.to_owned()` in
    /// kernel hot loops. Kernels operate on typed column vectors and
    /// selection indices; the sole audited exception is the row⇄batch
    /// facade (`kernels/facade.rs`, allowlisted), whose entire job is
    /// materialization.
    L007,
    /// Interprocedural panic reachability: no panic site in any function
    /// reachable over the call graph from the hot-path roots
    /// (`OnlineOp::process`, the driver batch/recovery loops, the
    /// scheduler worker turn). Closes L001's fixed-file-list gap.
    L008,
    /// Lock-order deadlock detection for `crates/server`: a cycle in the
    /// static lock-order graph, or re-acquiring an already-held lock
    /// (directly or via a callee), can deadlock two scheduler threads.
    L009,
    /// Allowlist staleness: a `scripts/lint-allow.txt` entry that matches
    /// no live finding is itself an error — suppressions must not outlive
    /// the code they excused. Not allowlistable.
    L010,
    /// Serving-layer instrumentation coverage (L005's discipline extended
    /// to the scheduler): every function in
    /// `crates/server/src/scheduler.rs` that transitions a session state,
    /// flips slot ownership, or bumps an admission/shed counter must emit
    /// a trace event (`trace_mark`) in the same body, so the telemetry
    /// plane never has a silent lifecycle transition. Not allowlistable:
    /// an unobservable transition defeats the telemetry contract by
    /// construction.
    L011,
    /// All durable writes go through `iolap-store`'s CRC-framed segment
    /// writer or atomic artifact replace: no raw `std::fs::write`,
    /// `File::create`, or `OpenOptions::new` on any persistence path
    /// outside `crates/store/`. A raw write has no torn-write detection
    /// and no crash-consistent rename, so a kill mid-write silently
    /// corrupts state the recovery path then trusts. Allowlistable only
    /// for audited golden-file updaters (explicitly opt-in, dev-only
    /// paths listed in `scripts/lint-allow.txt`).
    L012,
}

impl Rule {
    /// Stable rule identifier, e.g. `"V003"`.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::V001 => "V001",
            Rule::V002 => "V002",
            Rule::V003 => "V003",
            Rule::V004 => "V004",
            Rule::V005 => "V005",
            Rule::V006 => "V006",
            Rule::V007 => "V007",
            Rule::V008 => "V008",
            Rule::V009 => "V009",
            Rule::V010 => "V010",
            Rule::L001 => "L001",
            Rule::L002 => "L002",
            Rule::L003 => "L003",
            Rule::L004 => "L004",
            Rule::L005 => "L005",
            Rule::L006 => "L006",
            Rule::L007 => "L007",
            Rule::L008 => "L008",
            Rule::L009 => "L009",
            Rule::L010 => "L010",
            Rule::L011 => "L011",
            Rule::L012 => "L012",
        }
    }

    /// Short human-readable rule name.
    pub fn title(&self) -> &'static str {
        match self {
            Rule::V001 => "select-partitioning-mismatch",
            Rule::V002 => "aggregate-lineage-mismatch",
            Rule::V003 => "projection-mode-mismatch",
            Rule::V004 => "strict-consumer-of-uncertainty",
            Rule::V005 => "nondeterministic-key",
            Rule::V006 => "scale-config-mismatch",
            Rule::V007 => "checkpoint-state-mismatch",
            Rule::V008 => "root-annotation-mismatch",
            Rule::V009 => "fast-path-uncertain-arg",
            Rule::V010 => "recovery-spine-closure",
            Rule::L001 => "no-panic-hot",
            Rule::L002 => "no-unordered-iter-output",
            Rule::L003 => "no-instant-outside-metrics",
            Rule::L004 => "fault-hook-ungated",
            Rule::L005 => "instrumentation-coverage",
            Rule::L006 => "no-unbounded-blocking",
            Rule::L007 => "no-row-materialization-in-kernels",
            Rule::L008 => "panic-reachable-hot",
            Rule::L009 => "lock-order-deadlock",
            Rule::L010 => "stale-allow-entry",
            Rule::L011 => "serving-instrumentation-coverage",
            Rule::L012 => "raw-durable-write",
        }
    }

    /// All plan-verifier rules, in id order (for zero-filled counters).
    pub fn verifier_rules() -> &'static [Rule] {
        &[
            Rule::V001,
            Rule::V002,
            Rule::V003,
            Rule::V004,
            Rule::V005,
            Rule::V006,
            Rule::V007,
            Rule::V008,
            Rule::V009,
            Rule::V010,
        ]
    }

    /// All source-lint rules, in id order (for zero-filled counters).
    pub fn lint_rules() -> &'static [Rule] {
        &[
            Rule::L001,
            Rule::L002,
            Rule::L003,
            Rule::L004,
            Rule::L005,
            Rule::L006,
            Rule::L007,
            Rule::L008,
            Rule::L009,
            Rule::L010,
            Rule::L011,
            Rule::L012,
        ]
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id(), self.title())
    }
}

/// One plan-verifier finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Violated rule.
    pub rule: Rule,
    /// Operator path from the root, e.g. `Aggregate[id=0]/Select/Scan(sessions)`.
    pub path: String,
    /// Output column the finding is about, when column-specific.
    pub column: Option<usize>,
    /// What disagreed.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.rule, self.path)?;
        if let Some(c) = self.column {
            write!(f, " col {c}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Deterministic diagnostic order: (path, column, rule, message), exact
/// repeats deduped. The path plays the role a file/line pair plays for
/// lint findings.
pub fn sort_diagnostics(diags: &mut Vec<Diagnostic>) {
    diags.sort_by(|a, b| {
        (&a.path, a.column, a.rule, &a.message).cmp(&(&b.path, b.column, b.rule, &b.message))
    });
    diags.dedup_by(|a, b| {
        a.rule == b.rule && a.path == b.path && a.column == b.column && a.message == b.message
    });
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One diagnostic as a machine-readable JSON object (stable key order).
pub fn diagnostic_json(d: &Diagnostic) -> String {
    let column = match d.column {
        Some(c) => c.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"rule\":\"{}\",\"title\":\"{}\",\"path\":\"{}\",\"column\":{},\"message\":\"{}\"}}",
        d.rule.id(),
        d.rule.title(),
        json_escape(&d.path),
        column,
        json_escape(&d.message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_sorted_like_the_enum() {
        for rules in [Rule::verifier_rules(), Rule::lint_rules()] {
            let ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
            let mut sorted = ids.clone();
            sorted.sort();
            assert_eq!(
                ids, sorted,
                "enum order must match id order for Ord sorting"
            );
        }
    }

    #[test]
    fn sort_dedup_is_stable_and_exact() {
        let d = |rule, path: &str, msg: &str| Diagnostic {
            rule,
            path: path.into(),
            column: None,
            message: msg.into(),
        };
        let mut v = vec![
            d(Rule::V002, "b", "m"),
            d(Rule::V001, "a", "m"),
            d(Rule::V002, "b", "m"),
        ];
        sort_diagnostics(&mut v);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].path, "a");
    }

    #[test]
    fn diagnostic_json_escapes() {
        let d = Diagnostic {
            rule: Rule::V001,
            path: "Select/Scan".into(),
            column: Some(2),
            message: "quote \" and\nnewline".into(),
        };
        let j = diagnostic_json(&d);
        assert!(j.contains("\"rule\":\"V001\""));
        assert!(j.contains("\"column\":2"));
        assert!(j.contains("quote \\\" and\\nnewline"));
    }
}
