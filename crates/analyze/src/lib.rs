//! `iolap-analyze` — static analysis for the iOLAP reproduction.
//!
//! Two independent prongs, one diagnostic vocabulary (`Rule`):
//!
//! 1. **Plan verifier** (`verify`): an abstract interpreter over the
//!    rewritten online operator tree that re-derives the §4.1 uncertainty
//!    tags (`u#`, `uA`) from first principles — deliberately *without*
//!    reusing `iolap-core::annotate` — and cross-checks everything the
//!    rewriter configured: variation-range partitioning on selects (§5),
//!    lineage refs on uncertain aggregate outputs (§6.1), no strict
//!    consumers of folded-lineage thunks, deterministic join/group keys
//!    (§3.3), stream-scaling factors (§2), and checkpoint-state registration
//!    (§4.2/§5.1). Rules `V001`–`V008`.
//! 2. **Source lints** (`lint_tree` / the `srclint` binary): hand-rolled
//!    offline textual checks over `crates/**/*.rs` — no panics in operator
//!    hot paths, no order-sensitive hash iteration on report-reaching paths,
//!    no clock reads outside the metrics layer. Rules `L001`–`L003`, with an
//!    audited-exception allowlist at `scripts/lint-allow.txt`.
//!
//! Debug builds of `iolap-core::IolapDriver` consult an installed verifier
//! before executing batch 0; call [`install`] (the bench workloads do) to
//! activate it.

#![warn(missing_docs)]

pub mod diag;
pub mod lint;
pub mod tags;
pub mod verify;

pub use diag::{Diagnostic, Rule};
pub use lint::{lint_counts, lint_source, lint_tree, repo_root, Allowlist, LintFinding};
pub use tags::{derive, expr_uncertain, Tags};
pub use verify::{install, rule_counts, verify, verify_planned, verify_report};
