//! `iolap-analyze` — static analysis for the iOLAP reproduction.
//!
//! Four prongs, one diagnostic vocabulary (`Rule`):
//!
//! 1. **Plan verifier** (`verify`): an abstract interpreter over the
//!    rewritten online operator tree that re-derives the §4.1 uncertainty
//!    tags (`u#`, `uA`) from first principles — deliberately *without*
//!    reusing `iolap-core::annotate` — and cross-checks everything the
//!    rewriter configured: variation-range partitioning on selects (§5),
//!    lineage refs on uncertain aggregate outputs (§6.1), no strict
//!    consumers of folded-lineage thunks, deterministic join/group keys
//!    (§3.3), stream-scaling factors (§2), checkpoint-state registration
//!    (§4.2/§5.1), columnar fast-path eligibility, and recovery-spine
//!    closure. Rules `V001`–`V010`.
//! 2. **Source lints** (`lint_tree` / the `srclint` binary): token-stream
//!    checks over `crates/**/*.rs` built on a hand-rolled lexer
//!    ([`lexer`]) — no panics in operator hot paths, no order-sensitive
//!    hash iteration on report-reaching paths, no clock reads outside the
//!    metrics layer, gated fault hooks, trace-span coverage, bounded
//!    blocking, and kernel-loop materialization. Rules `L001`–`L007`, with
//!    an audited-exception allowlist at `scripts/lint-allow.txt` whose
//!    stale entries are themselves findings (`L010`).
//! 3. **Interprocedural analyses** over the same token stream: a
//!    name-resolved call graph ([`callgraph`]) drives panic reachability
//!    from the hot-path roots (`L008`) and a lock-order deadlock detector
//!    for the serving layer ([`lockorder`], `L009`).
//! 4. **Plan-space model checker** ([`modelcheck`]): bounded exhaustive
//!    enumeration of annotated operator trees, each run through the real
//!    rewriter + verifier and cross-checked against an independent
//!    uncertainty model, with mutation probes over every accepted plan.
//!
//! Debug builds of `iolap-core::IolapDriver` consult an installed verifier
//! before executing batch 0; call [`install`] (the bench workloads do) to
//! activate it.

#![warn(missing_docs)]

pub mod callgraph;
pub mod diag;
pub mod lexer;
pub mod lint;
pub mod lockorder;
pub mod modelcheck;
pub mod tags;
pub mod verify;

pub use callgraph::CallGraph;
pub use diag::{sort_diagnostics, Diagnostic, Rule};
pub use lint::{
    finding_json, lint_counts, lint_files, lint_source, lint_tree, repo_root, sort_findings,
    Allowlist, LintFinding,
};
pub use modelcheck::ModelCheckReport;
pub use tags::{derive, expr_uncertain, Tags};
pub use verify::{install, rule_counts, verify, verify_planned, verify_report};
