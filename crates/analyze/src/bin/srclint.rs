//! `srclint` — offline source-lint gate.
//!
//! Scans `crates/**/*.rs` for rules `L001`–`L009`, subtracts the audited
//! exceptions in `scripts/lint-allow.txt`, then turns every allowlist entry
//! that matched nothing into an `L010` staleness finding. Output is sorted
//! and deduplicated, so runs are byte-for-byte reproducible.
//!
//! Exit codes: `0` clean, `1` findings, `2` internal error (unreadable
//! allowlist or scan failure). Wired into `scripts/check.sh`; needs no
//! network and no third-party lint registry.

use iolap_analyze::{lint_tree, repo_root, sort_findings, Allowlist, Rule};
use std::process::ExitCode;

const EXIT_FINDINGS: u8 = 1;
const EXIT_INTERNAL: u8 = 2;

fn main() -> ExitCode {
    let root = repo_root();
    let allow = match Allowlist::load(&root.join("scripts/lint-allow.txt")) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("srclint: cannot read allowlist: {e}");
            return ExitCode::from(EXIT_INTERNAL);
        }
    };
    let findings = match lint_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("srclint: scan failed: {e}");
            return ExitCode::from(EXIT_INTERNAL);
        }
    };
    let total = findings.len();
    // Staleness (L010) is computed against the raw findings: an entry is
    // live iff it matches at least one finding the scan produced.
    let stale = allow.stale_entries(&findings);
    let (allowed, mut violations): (Vec<_>, Vec<_>) =
        findings.into_iter().partition(|f| allow.allows(f));
    violations.extend(stale);
    sort_findings(&mut violations);
    for f in &violations {
        println!("{f}");
    }
    let summary: Vec<String> = Rule::lint_rules()
        .iter()
        .map(|rule| {
            let n = violations.iter().filter(|f| f.rule == *rule).count();
            format!("{}={n}", rule.id())
        })
        .collect();
    eprintln!(
        "srclint: {total} finding(s), {} allowlisted, {} violation(s) [{}]",
        allowed.len(),
        violations.len(),
        summary.join(" ")
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_FINDINGS)
    }
}
