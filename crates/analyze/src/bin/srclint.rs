//! `srclint` — offline source-lint gate.
//!
//! Scans `crates/**/*.rs` for rules `L001`–`L003`, subtracts the audited
//! exceptions in `scripts/lint-allow.txt`, prints whatever remains, and
//! exits nonzero if anything does. Wired into `scripts/check.sh`; needs no
//! network and no third-party lint registry.

use iolap_analyze::{lint_tree, repo_root, Allowlist, Rule};
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = repo_root();
    let allow = match Allowlist::load(&root.join("scripts/lint-allow.txt")) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("srclint: cannot read allowlist: {e}");
            return ExitCode::FAILURE;
        }
    };
    let findings = match lint_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("srclint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let total = findings.len();
    let (allowed, violations): (Vec<_>, Vec<_>) =
        findings.into_iter().partition(|f| allow.allows(f));
    for f in &violations {
        println!("{f}");
    }
    let summary: Vec<String> = Rule::lint_rules()
        .iter()
        .map(|rule| {
            let n = violations.iter().filter(|f| f.rule == *rule).count();
            format!("{}={n}", rule.id())
        })
        .collect();
    eprintln!(
        "srclint: {total} finding(s), {} allowlisted, {} violation(s) [{}]",
        allowed.len(),
        violations.len(),
        summary.join(" ")
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
