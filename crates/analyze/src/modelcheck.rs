//! Exhaustive plan-space model checker.
//!
//! Enumerates every annotated operator tree over a tiny two-table world up
//! to a bounded depth, runs each through the real rewriter and the static
//! plan verifier, and cross-checks the accept/reject decision against a
//! third, independent uncertainty model written directly from the paper's
//! §3.3/§4.1 rules over the abstract grammar (never touching the rewriter's
//! or the verifier's code paths).
//!
//! # The world
//!
//! Two base tables: the streamed fact `s(k Int, v Float)` and the dimension
//! `d(k Int, w Float)`. Terms are built from:
//!
//! * **leaves** — `ScanS` (streamed) and `ScanD`;
//! * **7 unary constructors** — selects over column 0/1, identity and
//!   swapping projections, and COUNT/SUM/AVG grouped by column 0;
//! * **4 join constructors** (hash join and semi-join, keyed on column 0
//!   or 1) × **5 canonical right-hand shapes** (the two scans, SUM-by-key
//!   over each scan, and a filtered streamed scan).
//!
//! Depth counts the left spine: there are `E(1) = 2` leaves and
//! `E(d) = 27·E(d-1)` trees of depth exactly `d`, so depth ≤ 4 enumerates
//! 2 + 54 + 1458 + 39366 = **40 880** plans.
//!
//! # Cell classification
//!
//! For each term the model derives per-column/tuple uncertainty tags and
//! decides validity (join/semi-join keys and group columns must be
//! certain). The rewriter + verifier decide acceptance. The cross-product:
//!
//! * accepted & model-valid & verifier-clean → `ok`;
//! * rejected & model-invalid → `ok` (agreed rejection);
//! * **accepted but model-invalid** → `unsound_accepted` (a soundness hole
//!   — the acceptance criterion is that this set is empty);
//! * **rejected but model-valid** → `sound_rejected` (a completeness gap,
//!   reported but tolerated);
//! * accepted but verifier-diagnosed → `accepted_flagged` (the rewriter
//!   built a plan failing its own verifier — a consistency bug).
//!
//! # Mutation probes
//!
//! Every accepted-and-clean plan is additionally corrupted in up to seven
//! targeted ways (V001/V002/V003/V006/V008 seams plus the sink factor and
//! the root annotation) — each applicable probe must make the verifier
//! report *something*, or the cell is a `missed_mutation` (the verifier has
//! a blind spot the probe just exhibited). V010 is exercised by the
//! spine-select probe; V009's seam (a fast plan coexisting with uncertain
//! arguments) is unreachable through `AggregateOp::new` by construction and
//! is covered by a dedicated mutation test instead.

use crate::diag::json_escape;
use crate::verify::verify;
use iolap_core::ops::ProjMode;
use iolap_core::{rewrite, OnlineOp, OnlineQuery};
use iolap_engine::{AggCall, AggKind, BuiltinAgg, CmpOp, Expr, Plan, PlannedQuery};
use iolap_relation::{DataType, Schema, Value};
use std::collections::HashSet;

// ---------------------------------------------------------------------------
// Grammar
// ---------------------------------------------------------------------------

/// Unary constructors. Every one consumes and produces a tree whose columns
/// 0 and 1 exist (joins widen, projections narrow back to two).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnaryKind {
    /// `σ(col0 > 10)`.
    SelectK,
    /// `σ(col1 > 0.5)`.
    SelectV,
    /// `π(col0, col1)`.
    ProjId,
    /// `π(col1, col0)` — moves an uncertain aggregate column into key
    /// position, the seed of every model-invalid cell.
    ProjSwap,
    /// `γ_{col0}(COUNT(col1))`.
    AggCountByK,
    /// `γ_{col0}(SUM(col1))`.
    AggSumByK,
    /// `γ_{col0}(AVG(col1))`.
    AggAvgByK,
}

/// Join constructors: operator × key column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum JoinKind {
    JoinK0,
    JoinK1,
    SemiK0,
    SemiK1,
}

/// Canonical right-hand shapes for binary constructors. Fixing the right
/// side to five representative subtrees keeps the space a tractable
/// left-spine enumeration while still covering certain/uncertain and
/// streamed/dimension right inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum RightShape {
    ScanS,
    ScanD,
    AggSumScanS,
    AggSumScanD,
    SelectVScanS,
}

impl RightShape {
    fn term(self) -> Term {
        match self {
            RightShape::ScanS => Term::ScanS,
            RightShape::ScanD => Term::ScanD,
            RightShape::AggSumScanS => Term::Unary(UnaryKind::AggSumByK, Box::new(Term::ScanS)),
            RightShape::AggSumScanD => Term::Unary(UnaryKind::AggSumByK, Box::new(Term::ScanD)),
            RightShape::SelectVScanS => Term::Unary(UnaryKind::SelectV, Box::new(Term::ScanS)),
        }
    }
}

/// One abstract plan term.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Term {
    ScanS,
    ScanD,
    Unary(UnaryKind, Box<Term>),
    Binary(JoinKind, Box<Term>, RightShape),
}

impl Term {
    /// Compact canonical rendering, e.g. `JoinK0(SelectV(ScanS), AggSumScanS)`.
    pub fn describe(&self) -> String {
        match self {
            Term::ScanS => "ScanS".to_string(),
            Term::ScanD => "ScanD".to_string(),
            Term::Unary(k, c) => format!("{k:?}({})", c.describe()),
            Term::Binary(k, l, r) => format!("{k:?}({}, {r:?})", l.describe()),
        }
    }
}

const UNARIES: [UnaryKind; 7] = [
    UnaryKind::SelectK,
    UnaryKind::SelectV,
    UnaryKind::ProjId,
    UnaryKind::ProjSwap,
    UnaryKind::AggCountByK,
    UnaryKind::AggSumByK,
    UnaryKind::AggAvgByK,
];

const JOINS: [JoinKind; 4] = [
    JoinKind::JoinK0,
    JoinKind::JoinK1,
    JoinKind::SemiK0,
    JoinKind::SemiK1,
];

const SHAPES: [RightShape; 5] = [
    RightShape::ScanS,
    RightShape::ScanD,
    RightShape::AggSumScanS,
    RightShape::AggSumScanD,
    RightShape::SelectVScanS,
];

/// Number of terms of depth exactly `d`: `E(1) = 2`, `E(d) = 27·E(d-1)`.
pub fn cells_at_depth(d: usize) -> usize {
    2 * 27usize.pow(d.saturating_sub(1) as u32)
}

/// All terms up to and including `max_depth`, in deterministic order
/// (depth-major, then constructor order).
pub fn enumerate(max_depth: usize) -> Vec<Term> {
    let mut by_depth: Vec<Vec<Term>> = vec![vec![Term::ScanS, Term::ScanD]];
    for _ in 2..=max_depth {
        let prev = by_depth.last().expect("at least the leaf layer exists");
        let mut next = Vec::with_capacity(prev.len() * 27);
        for t in prev {
            for u in UNARIES {
                next.push(Term::Unary(u, Box::new(t.clone())));
            }
            for j in JOINS {
                for s in SHAPES {
                    next.push(Term::Binary(j, Box::new(t.clone()), s));
                }
            }
        }
        by_depth.push(next);
    }
    by_depth.into_iter().flatten().collect()
}

// ---------------------------------------------------------------------------
// Independent uncertainty model (third implementation)
// ---------------------------------------------------------------------------

/// Model-derived tags: per-column uA and the tuple-level u# (§4.1).
#[derive(Debug)]
struct MTags {
    cols: Vec<bool>,
    tuple: bool,
}

/// Why the model rejects a term (mirrors the §3.3 restrictions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ModelReject {
    /// Join or semi-join keyed on an uncertain column.
    JoinKey,
    /// Grouping on an uncertain column.
    GroupKey,
}

/// §3.3/§4.1 transfer rules over the abstract grammar, written from the
/// paper: streamed scans produce uncertain tuples; selects over uncertain
/// columns make membership uncertain; aggregates turn input uncertainty
/// into uncertain output values and must group on certain columns; joins
/// must key on certain columns and union their operands' tuple tags.
fn model(term: &Term) -> Result<MTags, ModelReject> {
    match term {
        Term::ScanS => Ok(MTags {
            cols: vec![false, false],
            tuple: true,
        }),
        Term::ScanD => Ok(MTags {
            cols: vec![false, false],
            tuple: false,
        }),
        Term::Unary(k, c) => {
            let t = model(c)?;
            Ok(match k {
                UnaryKind::SelectK => MTags {
                    tuple: t.tuple || t.cols[0],
                    ..t
                },
                UnaryKind::SelectV => MTags {
                    tuple: t.tuple || t.cols[1],
                    ..t
                },
                UnaryKind::ProjId => MTags {
                    cols: vec![t.cols[0], t.cols[1]],
                    tuple: t.tuple,
                },
                UnaryKind::ProjSwap => MTags {
                    cols: vec![t.cols[1], t.cols[0]],
                    tuple: t.tuple,
                },
                UnaryKind::AggCountByK | UnaryKind::AggSumByK | UnaryKind::AggAvgByK => {
                    if t.cols[0] {
                        return Err(ModelReject::GroupKey);
                    }
                    MTags {
                        cols: vec![false, t.tuple || t.cols[1]],
                        tuple: t.tuple,
                    }
                }
            })
        }
        Term::Binary(k, l, r) => {
            let lt = model(l)?;
            let rt = model(&r.term())?;
            let key = match k {
                JoinKind::JoinK0 | JoinKind::SemiK0 => 0,
                JoinKind::JoinK1 | JoinKind::SemiK1 => 1,
            };
            if lt.cols[key] || rt.cols[key] {
                return Err(ModelReject::JoinKey);
            }
            Ok(match k {
                JoinKind::JoinK0 | JoinKind::JoinK1 => {
                    let mut cols = lt.cols;
                    cols.extend(rt.cols);
                    MTags {
                        cols,
                        tuple: lt.tuple || rt.tuple,
                    }
                }
                JoinKind::SemiK0 | JoinKind::SemiK1 => MTags {
                    cols: lt.cols,
                    tuple: lt.tuple || rt.tuple,
                },
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Term → logical plan
// ---------------------------------------------------------------------------

struct Built {
    plan: Plan,
    types: Vec<DataType>,
    names: Vec<String>,
}

fn schema_of(names: &[String], types: &[DataType]) -> Schema {
    let pairs: Vec<(&str, DataType)> = names
        .iter()
        .map(String::as_str)
        .zip(types.iter().copied())
        .collect();
    Schema::from_pairs(&pairs)
}

fn build(term: &Term, next_agg: &mut u32) -> Built {
    match term {
        Term::ScanS => {
            let names = vec!["k".to_string(), "v".to_string()];
            let types = vec![DataType::Int, DataType::Float];
            Built {
                plan: Plan::Scan {
                    table: "s".to_string(),
                    schema: schema_of(&names, &types),
                },
                types,
                names,
            }
        }
        Term::ScanD => {
            let names = vec!["k".to_string(), "w".to_string()];
            let types = vec![DataType::Int, DataType::Float];
            Built {
                plan: Plan::Scan {
                    table: "d".to_string(),
                    schema: schema_of(&names, &types),
                },
                types,
                names,
            }
        }
        Term::Unary(k, c) => {
            let cb = build(c, next_agg);
            match k {
                UnaryKind::SelectK | UnaryKind::SelectV => {
                    let (col, lit) = match k {
                        UnaryKind::SelectK => (0, Value::Int(10)),
                        _ => (1, Value::Float(0.5)),
                    };
                    Built {
                        plan: Plan::Select {
                            input: Box::new(cb.plan),
                            predicate: Expr::Cmp {
                                op: CmpOp::Gt,
                                left: Box::new(Expr::Col(col)),
                                right: Box::new(Expr::Lit(lit)),
                            },
                        },
                        types: cb.types,
                        names: cb.names,
                    }
                }
                UnaryKind::ProjId | UnaryKind::ProjSwap => {
                    let (a, b) = match k {
                        UnaryKind::ProjId => (0, 1),
                        _ => (1, 0),
                    };
                    let names = vec!["p0".to_string(), "p1".to_string()];
                    let types = vec![cb.types[a], cb.types[b]];
                    Built {
                        plan: Plan::Project {
                            input: Box::new(cb.plan),
                            exprs: vec![Expr::Col(a), Expr::Col(b)],
                            schema: schema_of(&names, &types),
                        },
                        types,
                        names,
                    }
                }
                UnaryKind::AggCountByK | UnaryKind::AggSumByK | UnaryKind::AggAvgByK => {
                    let (builtin, out) = match k {
                        UnaryKind::AggCountByK => (BuiltinAgg::Count, "cnt"),
                        UnaryKind::AggSumByK => (BuiltinAgg::Sum, "sum"),
                        _ => (BuiltinAgg::Avg, "avg"),
                    };
                    let agg_id = *next_agg;
                    *next_agg += 1;
                    let names = vec!["g0".to_string(), out.to_string()];
                    let types = vec![cb.types[0], DataType::Float];
                    Built {
                        plan: Plan::Aggregate {
                            input: Box::new(cb.plan),
                            group_cols: vec![0],
                            aggs: vec![AggCall {
                                kind: AggKind::Builtin(builtin),
                                input: Expr::Col(1),
                                name: out.to_string(),
                            }],
                            schema: schema_of(&names, &types),
                            agg_id,
                        },
                        types,
                        names,
                    }
                }
            }
        }
        Term::Binary(k, l, r) => {
            let lb = build(l, next_agg);
            let rb = build(&r.term(), next_agg);
            let key = match k {
                JoinKind::JoinK0 | JoinKind::SemiK0 => 0,
                JoinKind::JoinK1 | JoinKind::SemiK1 => 1,
            };
            let keys = (vec![Expr::Col(key)], vec![Expr::Col(key)]);
            match k {
                JoinKind::JoinK0 | JoinKind::JoinK1 => {
                    let mut types = lb.types;
                    types.extend(rb.types);
                    let names: Vec<String> = (0..types.len()).map(|i| format!("j{i}")).collect();
                    Built {
                        plan: Plan::Join {
                            left: Box::new(lb.plan),
                            right: Box::new(rb.plan),
                            left_keys: keys.0,
                            right_keys: keys.1,
                            schema: schema_of(&names, &types),
                        },
                        types,
                        names,
                    }
                }
                JoinKind::SemiK0 | JoinKind::SemiK1 => Built {
                    plan: Plan::SemiJoin {
                        left: Box::new(lb.plan),
                        right: Box::new(rb.plan),
                        left_keys: keys.0,
                        right_keys: keys.1,
                    },
                    types: lb.types,
                    names: lb.names,
                },
            }
        }
    }
}

/// Lower a term to the logical plan the rewriter consumes.
pub fn to_planned(term: &Term) -> PlannedQuery {
    let mut next_agg = 0;
    let b = build(term, &mut next_agg);
    PlannedQuery {
        plan: b.plan,
        output_names: b.names,
    }
}

// ---------------------------------------------------------------------------
// Mutation probes
// ---------------------------------------------------------------------------

fn first_op<'a>(
    root: &'a mut OnlineOp,
    pred: &dyn Fn(&OnlineOp) -> bool,
) -> Option<&'a mut OnlineOp> {
    if pred(root) {
        return Some(root);
    }
    let children: Vec<&mut OnlineOp> = match root {
        OnlineOp::Scan(_) => Vec::new(),
        OnlineOp::Select(s) => vec![s.child.as_mut()],
        OnlineOp::Project(p) => vec![p.child.as_mut()],
        OnlineOp::Join(j) => vec![j.left.as_mut(), j.right.as_mut()],
        OnlineOp::SemiJoin(j) => vec![j.left.as_mut(), j.right.as_mut()],
        OnlineOp::Union(u) => u.children.iter_mut().collect(),
        OnlineOp::Aggregate(a) => vec![a.child.as_mut()],
    };
    for c in children {
        if let Some(found) = first_op(c, pred) {
            return Some(found);
        }
    }
    None
}

/// The probe battery: each returns a corrupted clone of `oq` when its seam
/// exists in the plan, or `None` when inapplicable. Every applicable probe
/// models a real rewriter-bug class and must be caught by [`verify`].
fn probes(oq: &OnlineQuery) -> Vec<(&'static str, OnlineQuery)> {
    let mut out = Vec::new();

    let mut q = oq.clone();
    if let Some(OnlineOp::Select(s)) =
        first_op(&mut q.root, &|op| matches!(op, OnlineOp::Select(_)))
    {
        s.uncertain_pred = !s.uncertain_pred;
        out.push(("select-partitioning-flip", q));
    }

    let mut q = oq.clone();
    if let Some(OnlineOp::Aggregate(a)) = first_op(
        &mut q.root,
        &|op| matches!(op, OnlineOp::Aggregate(a) if !a.arg_uncertain.is_empty()),
    ) {
        a.arg_uncertain[0] = !a.arg_uncertain[0];
        out.push(("agg-arg-uncertain-flip", q));
    }

    let mut q = oq.clone();
    if let Some(OnlineOp::Aggregate(a)) =
        first_op(&mut q.root, &|op| matches!(op, OnlineOp::Aggregate(_)))
    {
        a.input_tuple_uncertain = !a.input_tuple_uncertain;
        out.push(("agg-input-tuple-flip", q));
    }

    let mut q = oq.clone();
    if let Some(OnlineOp::Aggregate(a)) =
        first_op(&mut q.root, &|op| matches!(op, OnlineOp::Aggregate(_)))
    {
        a.scale_stream = !a.scale_stream;
        out.push(("agg-scale-stream-flip", q));
    }

    let mut q = oq.clone();
    if let Some(OnlineOp::Project(p)) = first_op(
        &mut q.root,
        &|op| matches!(op, OnlineOp::Project(p) if !p.modes.is_empty()),
    ) {
        p.modes[0] = match &p.modes[0] {
            ProjMode::Plain(e) => ProjMode::Thunk(std::sync::Arc::new(e.clone())),
            ProjMode::PassCell(i) => ProjMode::Plain(Expr::Col(*i)),
            ProjMode::Thunk(e) => ProjMode::Plain(e.as_ref().clone()),
        };
        out.push(("project-mode-flip", q));
    }

    let mut q = oq.clone();
    q.sink.stream_factor += 1;
    out.push(("sink-stream-factor-bump", q));

    let mut q = oq.clone();
    q.root_annotation.tuple_uncertain = !q.root_annotation.tuple_uncertain;
    out.push(("root-annotation-flip", q));

    out
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

/// One reported cell (a term whose classification is worth surfacing).
#[derive(Clone, Debug)]
pub struct CellRecord {
    /// Canonical term rendering.
    pub term: String,
    /// What happened (rejection reasons, verifier diagnostics, or the
    /// probe that went uncaught).
    pub detail: String,
}

impl CellRecord {
    /// Machine-readable JSON object for this record.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"term\":\"{}\",\"detail\":\"{}\"}}",
            json_escape(&self.term),
            json_escape(&self.detail)
        )
    }
}

/// Full model-checker outcome over one enumeration.
#[derive(Clone, Debug, Default)]
pub struct ModelCheckReport {
    /// Depth bound the enumeration ran to.
    pub depth: usize,
    /// Total cells (terms) enumerated.
    pub cells: usize,
    /// Cells accepted by the rewriter with a clean verifier pass and a
    /// model-valid term.
    pub accepted: usize,
    /// Cells rejected by both the rewriter and the model.
    pub agreed_rejected: usize,
    /// Mutation probes executed over accepted cells.
    pub probes: usize,
    /// Accepted by the rewriter although the model proves the term invalid.
    pub unsound_accepted: Vec<CellRecord>,
    /// Rejected by the rewriter although the model accepts the term.
    pub sound_rejected: Vec<CellRecord>,
    /// Accepted by the rewriter but flagged by its own verifier.
    pub accepted_flagged: Vec<CellRecord>,
    /// Accepted cells where a corruption probe escaped the verifier.
    pub missed_mutations: Vec<CellRecord>,
}

impl ModelCheckReport {
    /// Hard violations: soundness holes, rewriter/verifier inconsistency,
    /// and verifier blind spots. `sound_rejected` cells are reported but
    /// tolerated (conservative rejection loses completeness, not safety).
    pub fn violations(&self) -> usize {
        self.unsound_accepted.len() + self.accepted_flagged.len() + self.missed_mutations.len()
    }

    /// The whole report as one machine-readable JSON object.
    pub fn to_json(&self) -> String {
        let list = |v: &[CellRecord]| {
            let items: Vec<String> = v.iter().map(CellRecord::to_json).collect();
            format!("[{}]", items.join(","))
        };
        format!(
            "{{\"depth\":{},\"cells\":{},\"accepted\":{},\"agreed_rejected\":{},\
             \"probes\":{},\"violations\":{},\"unsound_accepted\":{},\
             \"sound_rejected\":{},\"accepted_flagged\":{},\"missed_mutations\":{}}}",
            self.depth,
            self.cells,
            self.accepted,
            self.agreed_rejected,
            self.probes,
            self.violations(),
            list(&self.unsound_accepted),
            list(&self.sound_rejected),
            list(&self.accepted_flagged),
            list(&self.missed_mutations),
        )
    }
}

/// Run the model checker over every term up to `max_depth`.
pub fn run(max_depth: usize) -> ModelCheckReport {
    let streamed: HashSet<String> = ["s".to_string()].into();
    let mut report = ModelCheckReport {
        depth: max_depth,
        ..ModelCheckReport::default()
    };
    for term in enumerate(max_depth) {
        report.cells += 1;
        let name = term.describe();
        let verdict = model(&term);
        let pq = to_planned(&term);
        match (rewrite(&pq, &streamed), verdict) {
            (Ok(oq), Ok(_)) => {
                let diags = verify(&oq);
                if !diags.is_empty() {
                    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
                    report.accepted_flagged.push(CellRecord {
                        term: name,
                        detail: rendered.join("; "),
                    });
                    continue;
                }
                report.accepted += 1;
                for (probe, corrupted) in probes(&oq) {
                    report.probes += 1;
                    if verify(&corrupted).is_empty() {
                        report.missed_mutations.push(CellRecord {
                            term: name.clone(),
                            detail: format!("probe `{probe}` escaped the verifier"),
                        });
                    }
                }
            }
            (Ok(_), Err(why)) => report.unsound_accepted.push(CellRecord {
                term: name,
                detail: format!("model rejects ({why:?}) but the rewriter accepted"),
            }),
            (Err(e), Ok(_)) => report.sound_rejected.push(CellRecord {
                term: name,
                detail: format!("model accepts but the rewriter rejected: {e}"),
            }),
            (Err(_), Err(_)) => report.agreed_rejected += 1,
        }
    }
    report
}

/// Depth used by `--smoke` runs (1 514 cells); full runs use
/// [`FULL_DEPTH`] (40 880 cells).
pub const SMOKE_DEPTH: usize = 3;
/// Depth used by full `experiments analyze` runs.
pub const FULL_DEPTH: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_core::RewriteError;

    #[test]
    fn enumeration_matches_the_closed_form() {
        assert_eq!(cells_at_depth(1), 2);
        assert_eq!(cells_at_depth(2), 54);
        assert_eq!(cells_at_depth(3), 1458);
        assert_eq!(cells_at_depth(4), 39366);
        assert_eq!(enumerate(1).len(), 2);
        assert_eq!(enumerate(2).len(), 56);
        assert_eq!(enumerate(3).len(), 1514);
    }

    #[test]
    fn model_and_rewriter_agree_on_an_uncertain_group_key() {
        // SUM over the streamed scan makes column 1 uncertain; the swap
        // moves it into key position; grouping on it must be rejected by
        // both the model and the real annotation pass.
        let term = Term::Unary(
            UnaryKind::AggSumByK,
            Box::new(Term::Unary(
                UnaryKind::ProjSwap,
                Box::new(Term::Unary(UnaryKind::AggSumByK, Box::new(Term::ScanS))),
            )),
        );
        assert_eq!(model(&term).unwrap_err(), ModelReject::GroupKey);
        let streamed: HashSet<String> = ["s".to_string()].into();
        assert!(matches!(
            rewrite(&to_planned(&term), &streamed),
            Err(RewriteError::Annotate(_))
        ));
    }

    #[test]
    fn depth_two_space_is_exhaustively_clean() {
        let report = run(2);
        assert_eq!(report.cells, 56);
        assert_eq!(report.violations(), 0, "{}", report.to_json());
        assert_eq!(
            report.accepted + report.agreed_rejected + report.sound_rejected.len(),
            report.cells
        );
        assert!(report.probes > 0, "probes must actually run");
    }

    #[test]
    fn report_json_is_machine_readable() {
        let report = run(1);
        let j = report.to_json();
        assert!(j.contains("\"cells\":2"));
        assert!(j.contains("\"unsound_accepted\":["));
    }
}
