//! Mutation tests for the static plan verifier: hand-corrupt rewritten
//! online plans in targeted ways and assert the verifier reports exactly
//! the intended rule id (and nothing on the uncorrupted plan).
//!
//! Each mutation models a realistic rewriter bug class:
//!
//! * V001/V007 — "forgot to enable variation-range partitioning" on the
//!   uncertain select (which also drops its checkpointed state).
//! * V002 — lineage-emission flags out of sync with the real input tags.
//! * V003 — eager projection of a column that still carries lineage.
//! * V004 — join keys moved onto a column fed by an uncertain aggregate.
//! * V005 — a nondeterministic UDF smuggled into a join key.
//! * V006 — stream-scaling flags out of sync (aggregate and sink halves).
//! * V008 — stale root annotation.
//! * V009 — columnar fast plan compiled before uncertainty was derived.
//! * V010 — checkpointed state dropped on the streamed spine (with an
//!   off-spine negative control pinning the rule's path sensitivity).
//! * L008/L009 — lint-side mutations over virtual source fixtures: a panic
//!   spliced into a hot-path helper, and a two-mutex ordering cycle.

use iolap_analyze::modelcheck::{to_planned, JoinKind, RightShape, Term, UnaryKind};
use iolap_analyze::{lint_files, verify};
use iolap_core::ops::ProjMode;
use iolap_core::ops_agg::AggregateOp;
use iolap_core::{rewrite, OnlineOp, OnlineQuery};
use iolap_engine::{plan_sql, Expr, ExprError, ScalarUdf};
use iolap_relation::{DataType, Value};
use iolap_workloads::{conviva_catalog, conviva_query, conviva_registry};
use std::collections::HashSet;
use std::sync::Arc;

fn rewritten(id: &str) -> OnlineQuery {
    let cat = conviva_catalog(60, 7);
    let registry = conviva_registry();
    let q = conviva_query(id).unwrap_or_else(|| panic!("unknown query {id}"));
    let pq = plan_sql(q.sql, &cat, &registry).unwrap();
    let streamed: HashSet<String> = [q.stream_table.to_string()].into();
    rewrite(&pq, &streamed).unwrap()
}

fn children_mut(op: &mut OnlineOp) -> Vec<&mut OnlineOp> {
    match op {
        OnlineOp::Scan(_) => Vec::new(),
        OnlineOp::Select(s) => vec![s.child.as_mut()],
        OnlineOp::Project(p) => vec![p.child.as_mut()],
        OnlineOp::Join(j) => vec![j.left.as_mut(), j.right.as_mut()],
        OnlineOp::SemiJoin(j) => vec![j.left.as_mut(), j.right.as_mut()],
        OnlineOp::Union(u) => u.children.iter_mut().collect(),
        OnlineOp::Aggregate(a) => vec![a.child.as_mut()],
    }
}

/// Apply `f` preorder until it reports having mutated a node; panics if no
/// node matched (the mutation would silently test nothing).
fn mutate_first(root: &mut OnlineOp, what: &str, f: &mut dyn FnMut(&mut OnlineOp) -> bool) {
    fn go(op: &mut OnlineOp, f: &mut dyn FnMut(&mut OnlineOp) -> bool) -> bool {
        if f(op) {
            return true;
        }
        for c in children_mut(op) {
            if go(c, f) {
                return true;
            }
        }
        false
    }
    assert!(go(root, f), "mutation site not found: {what}");
}

fn rule_ids(q: &OnlineQuery) -> Vec<&'static str> {
    let mut ids: Vec<_> = verify(q).iter().map(|d| d.rule.id()).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[test]
fn clean_plans_have_no_diagnostics() {
    for id in ["SBI", "C2", "C3"] {
        let oq = rewritten(id);
        let diags = verify(&oq);
        assert!(diags.is_empty(), "{id}: {diags:?}");
    }
}

#[test]
fn v001_v007_dropped_variation_range_partitioning() {
    let mut oq = rewritten("SBI");
    mutate_first(&mut oq.root, "uncertain select", &mut |op| match op {
        OnlineOp::Select(s) if s.uncertain_pred => {
            s.uncertain_pred = false;
            true
        }
        _ => false,
    });
    // Disabling partitioning mis-types the select (V001), drops the
    // nondeterministic-set state that must survive recovery (V007), and —
    // because the select sits on the streamed spine — breaks the recovery
    // closure (V010).
    assert_eq!(rule_ids(&oq), ["V001", "V007", "V010"]);
}

#[test]
fn v002_stale_tuple_uncertainty_flag() {
    let mut oq = rewritten("SBI");
    mutate_first(&mut oq.root, "aggregate", &mut |op| match op {
        OnlineOp::Aggregate(a) if a.input_tuple_uncertain => {
            a.input_tuple_uncertain = false;
            true
        }
        _ => false,
    });
    assert_eq!(rule_ids(&oq), ["V002"]);
}

#[test]
fn v002_stale_arg_uncertainty_flag() {
    let mut oq = rewritten("C3");
    let mut col = None;
    mutate_first(&mut oq.root, "aggregate", &mut |op| match op {
        OnlineOp::Aggregate(a) => {
            a.arg_uncertain[0] = !a.arg_uncertain[0];
            col = Some(a.group_cols.len());
            true
        }
        _ => false,
    });
    // C3's aggregate folds via the columnar fast path, so marking its
    // argument uncertain is both a stale flag (V002) and a fast-path
    // eligibility violation (V009).
    let diags = verify(&oq);
    assert_eq!(rule_ids(&oq), ["V002", "V009"], "{diags:?}");
    assert!(diags.iter().all(|d| d.column == col), "{diags:?}");
}

#[test]
fn v003_eager_projection_drops_lineage() {
    let mut oq = rewritten("SBI");
    // The root projection passes the aggregate's lineage-ref column through
    // untouched (PassCell); evaluating it eagerly would force the ref.
    mutate_first(
        &mut oq.root,
        "PassCell over ref column",
        &mut |op| match op {
            OnlineOp::Project(p) if matches!(p.modes.first(), Some(ProjMode::PassCell(_))) => {
                p.modes[0] = ProjMode::Plain(Expr::Col(0));
                true
            }
            _ => false,
        },
    );
    assert_eq!(rule_ids(&oq), ["V003"]);
}

#[test]
fn v003_spurious_lineage_mode() {
    let mut oq = rewritten("C3");
    // The root projection's first column is a certain group key; thunking it
    // would defer a value that needs no deferral.
    mutate_first(
        &mut oq.root,
        "Plain over certain column",
        &mut |op| match op {
            OnlineOp::Project(p) if matches!(p.modes.first(), Some(ProjMode::Plain(_))) => {
                let ProjMode::Plain(e) = p.modes[0].clone() else {
                    return false;
                };
                p.modes[0] = ProjMode::Thunk(Arc::new(e));
                true
            }
            _ => false,
        },
    );
    assert_eq!(rule_ids(&oq), ["V003"]);
}

#[test]
fn v004_join_key_over_uncertain_column() {
    let mut oq = rewritten("SBI");
    // SBI's decorrelated cross join carries the inner aggregate's lineage
    // ref as the right side's column 0; keying on it makes a strict hash
    // consumer of an uncertain value.
    mutate_first(&mut oq.root, "cross join", &mut |op| match op {
        OnlineOp::Join(j) => {
            j.left_keys = vec![Expr::Col(0)];
            j.right_keys = vec![Expr::Col(0)];
            true
        }
        _ => false,
    });
    let diags = verify(&oq);
    assert_eq!(rule_ids(&oq), ["V004"], "{diags:?}");
    assert!(diags.iter().any(|d| d.message.contains("right key")));
}

#[test]
fn v004_group_by_uncertain_column() {
    let mut oq = rewritten("SBI");
    // Splice out the projection under the outer aggregate so the aggregate
    // reads the join output directly — including the inner aggregate's
    // lineage-ref column — then group by that ref column. (The collateral
    // arity diagnostics are expected; the test pins the V004.)
    let mut target = None;
    mutate_first(&mut oq.root, "outer aggregate", &mut |op| match op {
        OnlineOp::Aggregate(a) => {
            let OnlineOp::Project(p) = a.child.as_mut() else {
                return false;
            };
            let placeholder = OnlineOp::Scan(iolap_core::ops::ScanOp::new(
                "placeholder".to_string(),
                iolap_relation::Schema::empty(),
                false,
            ));
            let grand = std::mem::replace(p.child.as_mut(), placeholder);
            *a.child = grand;
            let child_tags = iolap_analyze::derive(&a.child);
            let Some(c) = child_tags.attr_uncertain.iter().position(|&u| u) else {
                return false;
            };
            a.group_cols = vec![c];
            target = Some(c);
            true
        }
        _ => false,
    });
    let diags = verify(&oq);
    assert!(
        diags
            .iter()
            .any(|d| d.rule.id() == "V004" && d.column == target),
        "{diags:?}"
    );
}

/// A deliberately impure UDF for the V005 mutation.
struct SampleChoice;

impl ScalarUdf for SampleChoice {
    fn name(&self) -> &str {
        "SAMPLE_CHOICE"
    }
    fn invoke(&self, args: &[Value]) -> Result<Value, ExprError> {
        Ok(args.first().cloned().unwrap_or(Value::Null))
    }
    fn return_type(&self, _args: &[DataType]) -> DataType {
        DataType::Float
    }
    fn deterministic(&self) -> bool {
        false
    }
}

#[test]
fn v005_nondeterministic_udf_in_join_key() {
    let mut oq = rewritten("SBI");
    mutate_first(&mut oq.root, "cross join", &mut |op| match op {
        OnlineOp::Join(j) => {
            j.left_keys = vec![Expr::Udf {
                func: Arc::new(SampleChoice),
                args: vec![Expr::Col(0)],
            }];
            j.right_keys = vec![Expr::Col(1)];
            true
        }
        _ => false,
    });
    let diags = verify(&oq);
    assert_eq!(rule_ids(&oq), ["V005"], "{diags:?}");
    assert!(diags[0].message.contains("SAMPLE_CHOICE"));
}

#[test]
fn v006_stale_aggregate_scaling() {
    let mut oq = rewritten("SBI");
    mutate_first(&mut oq.root, "scaled aggregate", &mut |op| match op {
        OnlineOp::Aggregate(a) if a.scale_stream => {
            a.scale_stream = false;
            true
        }
        _ => false,
    });
    assert_eq!(rule_ids(&oq), ["V006"]);
}

#[test]
fn v006_stale_sink_factor() {
    let mut oq = rewritten("SBI");
    oq.sink.stream_factor += 1;
    let diags = verify(&oq);
    assert_eq!(rule_ids(&oq), ["V006"], "{diags:?}");
    assert_eq!(diags[0].path, "Sink");
}

/// Rewrite a model-checker term against the model world's streamed table.
fn model_rewritten(term: &Term) -> OnlineQuery {
    let pq = to_planned(term);
    let streamed: HashSet<String> = ["s".to_string()].into();
    rewrite(&pq, &streamed).unwrap()
}

#[test]
fn v009_fast_plan_with_uncertain_argument() {
    // AVG over a SUM output: the outer aggregate's argument column is
    // genuinely uncertain, so `AggregateOp::new` refuses to compile the
    // columnar fast plan. The mutation models a rewriter that compiled the
    // fast plan *before* deriving uncertainty: rebuild the operator with
    // all-certain flags (fast plan compiles) and then restore the true
    // flags on the public field.
    let term = Term::Unary(
        UnaryKind::AggAvgByK,
        Box::new(Term::Unary(UnaryKind::AggSumByK, Box::new(Term::ScanS))),
    );
    let mut oq = model_rewritten(&term);
    assert!(rule_ids(&oq).is_empty());
    mutate_first(
        &mut oq.root,
        "uncertain-arg aggregate",
        &mut |op| match op {
            OnlineOp::Aggregate(a) if a.arg_uncertain.iter().any(|&u| u) => {
                let saved = a.arg_uncertain.clone();
                *a = AggregateOp::new(
                    (*a.child).clone(),
                    a.group_cols.clone(),
                    a.aggs.clone(),
                    a.schema.clone(),
                    a.agg_id,
                    vec![false; saved.len()],
                    a.input_tuple_uncertain,
                    a.scale_stream,
                );
                a.arg_uncertain = saved;
                true
            }
            _ => false,
        },
    );
    let diags = verify(&oq);
    assert_eq!(rule_ids(&oq), ["V009"], "{diags:?}");
}

#[test]
fn v010_dropped_spine_state_breaks_recovery_closure() {
    // A partitioned select directly on the streamed spine: disabling its
    // partitioning drops checkpointed state that the recovery closure
    // needs, so V010 joins the V001/V007 pair and anchors at the select.
    let term = Term::Unary(
        UnaryKind::SelectV,
        Box::new(Term::Unary(UnaryKind::AggSumByK, Box::new(Term::ScanS))),
    );
    let mut oq = model_rewritten(&term);
    assert!(rule_ids(&oq).is_empty());
    mutate_first(&mut oq.root, "spine select", &mut |op| match op {
        OnlineOp::Select(s) if s.uncertain_pred => {
            s.uncertain_pred = false;
            true
        }
        _ => false,
    });
    let diags = verify(&oq);
    assert_eq!(rule_ids(&oq), ["V001", "V007", "V010"], "{diags:?}");
    let v010 = diags.iter().find(|d| d.rule.id() == "V010").unwrap();
    assert!(v010.path.contains("Select"), "{v010:?}");
}

#[test]
fn v010_off_spine_select_does_not_implicate_recovery() {
    // Negative control for V010's path sensitivity: spurious partitioning
    // on a *dimension-side* select (off the streamed spine) mis-types the
    // select (V001) but owes the recovery closure nothing — neither V007
    // nor V010 may fire.
    let term = Term::Binary(
        JoinKind::JoinK0,
        Box::new(Term::Unary(UnaryKind::SelectV, Box::new(Term::ScanD))),
        RightShape::ScanS,
    );
    let mut oq = model_rewritten(&term);
    assert!(rule_ids(&oq).is_empty());
    mutate_first(&mut oq.root, "dimension select", &mut |op| match op {
        OnlineOp::Select(s) if !s.uncertain_pred => {
            s.uncertain_pred = true;
            true
        }
        _ => false,
    });
    assert_eq!(rule_ids(&oq), ["V001"]);
}

fn lint_rule_ids(files: &[(String, String)]) -> Vec<&'static str> {
    let mut ids: Vec<_> = lint_files(files).iter().map(|f| f.rule.id()).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[test]
fn l008_panic_spliced_into_hot_path_helper() {
    // `step` is an L008 root in driver.rs; a panic site two calls deep
    // becomes reachable the moment it is introduced.
    let clean = vec![(
        "crates/core/src/driver.rs".to_string(),
        "pub fn step(&mut self) -> u32 { advance_epoch(self.epoch) }\n\
         fn advance_epoch(e: u32) -> u32 { bump(e) }\n\
         fn bump(e: u32) -> u32 { e + 1 }\n"
            .to_string(),
    )];
    assert_eq!(lint_rule_ids(&clean), [] as [&str; 0]);

    let mutated = vec![(
        "crates/core/src/driver.rs".to_string(),
        "pub fn step(&mut self) -> u32 { advance_epoch(self.epoch) }\n\
         fn advance_epoch(e: u32) -> u32 { bump(e) }\n\
         fn bump(e: u32) -> u32 { e.checked_add(1).expect(\"epoch overflow\") }\n"
            .to_string(),
    )];
    let findings = lint_files(&mutated);
    assert_eq!(lint_rule_ids(&mutated), ["L008"], "{findings:?}");
    assert!(
        findings[0].text.contains("step -> advance_epoch -> bump"),
        "{findings:?}"
    );
}

#[test]
fn l009_two_mutex_ordering_cycle() {
    // Two threads taking `queue` and `workers` in opposite orders deadlock;
    // the same pair in a consistent order is clean.
    let cyclic = vec![(
        "crates/server/src/pool.rs".to_string(),
        "fn submit(&self) { let q = self.queue.lock().unwrap(); let w = self.workers.lock().unwrap(); }\n\
         fn drain(&self) { let w = self.workers.lock().unwrap(); let q = self.queue.lock().unwrap(); }\n"
            .to_string(),
    )];
    let findings = lint_files(&cyclic);
    assert_eq!(lint_rule_ids(&cyclic), ["L009"], "{findings:?}");
    assert!(
        findings.iter().any(|f| f.text.contains("lock-order cycle")),
        "{findings:?}"
    );

    let consistent = vec![(
        "crates/server/src/pool.rs".to_string(),
        "fn submit(&self) { let q = self.queue.lock().unwrap(); let w = self.workers.lock().unwrap(); }\n\
         fn drain(&self) { let q = self.queue.lock().unwrap(); let w = self.workers.lock().unwrap(); }\n"
            .to_string(),
    )];
    assert_eq!(lint_rule_ids(&consistent), [] as [&str; 0]);
}

#[test]
fn l012_raw_write_spliced_into_persistence_path() {
    // A durable-layer function writing through the store's framed writer
    // is clean; "optimizing" it into a raw std::fs::write (the realistic
    // bug: bypassing the CRC framing because it looks equivalent) is
    // exactly an L012.
    let clean = vec![(
        "crates/server/src/durable.rs".to_string(),
        "fn spill(w: &mut SegmentWriter, line: &str) -> io::Result<()> {\n\
         w.append(line.as_bytes())\n\
         }\n"
        .to_string(),
    )];
    assert_eq!(lint_rule_ids(&clean), [] as [&str; 0]);

    let mutated = vec![(
        "crates/server/src/durable.rs".to_string(),
        "fn spill(path: &Path, line: &str) -> io::Result<()> {\n\
         std::fs::write(path, line.as_bytes())\n\
         }\n"
        .to_string(),
    )];
    let findings = lint_files(&mutated);
    assert_eq!(lint_rule_ids(&mutated), ["L012"], "{findings:?}");
    assert!(findings[0].text.contains("fs::write"), "{findings:?}");

    // The same raw write inside crates/store is the framed writer's own
    // implementation — the rule's exemption, pinned as a negative control.
    let in_store = vec![(
        "crates/store/src/segment.rs".to_string(),
        "fn create(path: &Path) -> io::Result<File> {\n\
         File::create(path)\n\
         }\n"
        .to_string(),
    )];
    assert_eq!(lint_rule_ids(&in_store), [] as [&str; 0]);
}

#[test]
fn l011_trace_mark_removed_from_scheduler_transition() {
    // A scheduler function that transitions session state while calling
    // trace_mark is clean; deleting the trace_mark call (the realistic
    // "refactor dropped the instrumentation" bug) is exactly an L011.
    let clean = vec![(
        "crates/server/src/scheduler.rs".to_string(),
        "fn trace_mark(t: Option<&Tracer>, name: &str, id: u64, d: &str) { let _ = (t, name, id, d); }\n\
         fn admit(slot: &mut Slot, tracer: Option<&Tracer>) {\n\
         trace_mark(tracer, \"sess.admit\", 0, \"direct\");\n\
         slot.state = SessionState::Running;\n\
         slot.holds_slot = true;\n\
         }\n"
            .to_string(),
    )];
    assert_eq!(lint_rule_ids(&clean), [] as [&str; 0]);

    let mutated = vec![(
        "crates/server/src/scheduler.rs".to_string(),
        "fn trace_mark(t: Option<&Tracer>, name: &str, id: u64, d: &str) { let _ = (t, name, id, d); }\n\
         fn admit(slot: &mut Slot, tracer: Option<&Tracer>) {\n\
         slot.state = SessionState::Running;\n\
         slot.holds_slot = true;\n\
         }\n"
            .to_string(),
    )];
    let findings = lint_files(&mutated);
    assert_eq!(lint_rule_ids(&mutated), ["L011"], "{findings:?}");
    assert!(findings[0].text.contains("fn admit"), "{findings:?}");
}

#[test]
fn v008_stale_root_annotation() {
    let mut oq = rewritten("SBI");
    oq.root_annotation.tuple_uncertain = !oq.root_annotation.tuple_uncertain;
    assert_eq!(rule_ids(&oq), ["V008"]);

    let mut oq = rewritten("C2");
    oq.root_annotation.attr_uncertain[0] = !oq.root_annotation.attr_uncertain[0];
    assert_eq!(rule_ids(&oq), ["V008"]);
}
