//! Agreement tests: every built-in evaluation query (TPC-H subset, Conviva
//! C1–C12 + SBI) is statically verifier-clean, and — with the verifier
//! installed in the driver's debug hook — its final online batch agrees
//! with the offline answer over the full data. Together these tie the
//! static rules to the dynamic semantics they are meant to protect: a plan
//! the verifier passes really does converge to the exact answer.

use iolap_analyze::verify_planned;
use iolap_core::{IolapConfig, IolapDriver};
use iolap_engine::{execute, plan_sql, FunctionRegistry};
use iolap_relation::{Catalog, PartitionMode};
use iolap_workloads::{
    conviva_catalog, conviva_queries, conviva_registry, tpch_catalog, tpch_queries, QuerySpec,
};

fn config(batches: usize) -> IolapConfig {
    let mut c = IolapConfig::with_batches(batches).trials(25).seed(17);
    c.partition_mode = PartitionMode::RowShuffle;
    c
}

fn check(q: &QuerySpec, cat: &Catalog, registry: &FunctionRegistry, batches: usize) {
    let pq = plan_sql(q.sql, cat, registry).unwrap_or_else(|e| panic!("{}: plan {e}", q.id));

    let diags =
        verify_planned(&pq, q.stream_table).unwrap_or_else(|e| panic!("{}: rewrite {e}", q.id));
    assert!(diags.is_empty(), "{}: verifier diagnostics {diags:?}", q.id);

    // With the verifier installed, driver construction re-checks the plan
    // in debug builds — the hook path itself is exercised here.
    iolap_analyze::install();
    let mut driver = IolapDriver::from_plan(&pq, cat, q.stream_table, config(batches))
        .unwrap_or_else(|e| panic!("{}: driver {e}", q.id));
    let mut last = None;
    while let Some(step) = driver.step() {
        last = Some(step.unwrap_or_else(|e| panic!("{}: batch {e}", q.id)));
    }
    let last = last.unwrap_or_else(|| panic!("{}: no batches ran", q.id));
    let exact = execute(&pq.plan, cat).unwrap();
    assert!(
        last.result.relation.approx_eq(&exact, 1e-6),
        "{}: final batch != offline answer\n== online ==\n{}== offline ==\n{}",
        q.id,
        last.result.relation,
        exact
    );
}

#[test]
fn tpch_suite_verifier_clean_and_agrees() {
    let cat = tpch_catalog(0.02, 99);
    let registry = FunctionRegistry::with_builtins();
    for q in tpch_queries() {
        check(&q, &cat, &registry, 4);
    }
}

#[test]
fn conviva_suite_verifier_clean_and_agrees() {
    let cat = conviva_catalog(150, 5);
    let registry = conviva_registry();
    for q in conviva_queries() {
        check(&q, &cat, &registry, 4);
    }
}
