//! Golden snapshot of the machine-readable diagnostics JSON.
//!
//! A fixed corpus — three verifier mutations over a model-checker term,
//! the L008/L009 lint fixtures, and a depth-2 model-checker report — is
//! rendered through `diagnostic_json` / `finding_json` /
//! `ModelCheckReport::to_json` and byte-compared against
//! `scripts/analyze-diagnostics.golden`, so any drift in the diagnostics
//! schema (key names, rule titles, message wording) is a deliberate,
//! reviewed change. Regenerate with
//! `IOLAP_UPDATE_GOLDEN=1 cargo test -p iolap-analyze --test golden_diag`.

use iolap_analyze::diag::diagnostic_json;
use iolap_analyze::modelcheck::{self, to_planned, Term, UnaryKind};
use iolap_analyze::{finding_json, lint_files, verify};
use iolap_core::{rewrite, OnlineOp, OnlineQuery};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Rewrite the spine term `SelectV(AggSumByK(ScanS))` against the model
/// world's streamed table.
fn spine_query() -> OnlineQuery {
    let term = Term::Unary(
        UnaryKind::SelectV,
        Box::new(Term::Unary(UnaryKind::AggSumByK, Box::new(Term::ScanS))),
    );
    let streamed: HashSet<String> = ["s".to_string()].into();
    rewrite(&to_planned(&term), &streamed).unwrap()
}

/// Disable partitioning on the first partitioned select, preorder.
fn flip_first_uncertain_select(op: &mut OnlineOp) -> bool {
    if let OnlineOp::Select(s) = op {
        if s.uncertain_pred {
            s.uncertain_pred = false;
            return true;
        }
    }
    let children: Vec<&mut OnlineOp> = match op {
        OnlineOp::Scan(_) => Vec::new(),
        OnlineOp::Select(s) => vec![s.child.as_mut()],
        OnlineOp::Project(p) => vec![p.child.as_mut()],
        OnlineOp::Join(j) => vec![j.left.as_mut(), j.right.as_mut()],
        OnlineOp::SemiJoin(j) => vec![j.left.as_mut(), j.right.as_mut()],
        OnlineOp::Union(u) => u.children.iter_mut().collect(),
        OnlineOp::Aggregate(a) => vec![a.child.as_mut()],
    };
    children.into_iter().any(flip_first_uncertain_select)
}

/// The snapshot document: one JSON object, one section per diagnostics
/// producer, rendered with section-per-line breaks for reviewable diffs.
fn render() -> String {
    let mut verifier_diags = Vec::new();
    // V001/V007/V010: dropped partitioning on the streamed spine.
    let mut oq = spine_query();
    assert!(flip_first_uncertain_select(&mut oq.root));
    verifier_diags.extend(verify(&oq));
    // V006: sink scaling out of sync with the aggregate.
    let mut oq = spine_query();
    oq.sink.stream_factor += 1;
    verifier_diags.extend(verify(&oq));
    // V008: stale root annotation.
    let mut oq = spine_query();
    oq.root_annotation.tuple_uncertain = !oq.root_annotation.tuple_uncertain;
    verifier_diags.extend(verify(&oq));

    // L008 + L009: the panic-reachability and lock-order fixtures.
    let fixtures = vec![
        (
            "crates/core/src/driver.rs".to_string(),
            "pub fn step(&mut self) -> u32 { bump(self.epoch) }\n\
             fn bump(e: u32) -> u32 { e.checked_add(1).expect(\"epoch overflow\") }\n"
                .to_string(),
        ),
        (
            "crates/server/src/pool.rs".to_string(),
            "fn submit(&self) { let q = self.queue.lock().unwrap(); let w = self.workers.lock().unwrap(); }\n\
             fn drain(&self) { let w = self.workers.lock().unwrap(); let q = self.queue.lock().unwrap(); }\n"
                .to_string(),
        ),
    ];
    let lint_findings = lint_files(&fixtures);
    assert!(!lint_findings.is_empty());

    let mut out = String::from("{\n\"verifier\":[\n");
    for (i, d) in verifier_diags.iter().enumerate() {
        let _ = writeln!(
            out,
            "{}{}",
            diagnostic_json(d),
            if i + 1 < verifier_diags.len() {
                ","
            } else {
                ""
            }
        );
    }
    out.push_str("],\n\"lints\":[\n");
    for (i, f) in lint_findings.iter().enumerate() {
        let _ = writeln!(
            out,
            "{}{}",
            finding_json(f),
            if i + 1 < lint_findings.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "],\n\"model\":{}\n}}", modelcheck::run(2).to_json());
    out
}

#[test]
fn diagnostics_json_matches_golden_snapshot() {
    let got = render();
    let path = iolap_analyze::repo_root().join("scripts/analyze-diagnostics.golden");
    if std::env::var("IOLAP_UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_default();
    assert_eq!(
        want, got,
        "diagnostics schema drifted from scripts/analyze-diagnostics.golden; \
         if the change is intentional, regenerate with IOLAP_UPDATE_GOLDEN=1"
    );
}
