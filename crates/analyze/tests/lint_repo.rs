//! The repository's own sources must be lint-clean modulo the audited
//! allowlist, and the allowlist must not go stale: every entry still has to
//! match a live finding, so fixed code sheds its exception.

use iolap_analyze::{lint_tree, repo_root, Allowlist};
use std::fs;

#[test]
fn repo_sources_lint_clean_modulo_allowlist() {
    let root = repo_root();
    let allow = Allowlist::load(&root.join("scripts/lint-allow.txt")).unwrap();
    let findings = lint_tree(&root).unwrap();
    let violations: Vec<String> = findings
        .iter()
        .filter(|f| !allow.allows(f))
        .map(|f| f.to_string())
        .collect();
    assert!(
        violations.is_empty(),
        "non-allowlisted lint findings:\n{}",
        violations.join("\n")
    );
}

#[test]
fn allowlist_has_no_stale_entries() {
    let root = repo_root();
    let text = fs::read_to_string(root.join("scripts/lint-allow.txt")).unwrap();
    let findings = lint_tree(&root).unwrap();
    for line in text.lines().map(str::trim) {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let single = Allowlist::parse(line);
        assert!(
            findings.iter().any(|f| single.allows(f)),
            "stale allowlist entry (no matching finding): {line}"
        );
    }
}
