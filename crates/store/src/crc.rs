//! CRC32 (IEEE 802.3 polynomial), table-driven, computed at compile time.
//!
//! The same polynomial as zlib/`cksum -o 3`: reflected 0xEDB88320, initial
//! value and final XOR of `0xFFFF_FFFF`. The canonical check vector
//! `"123456789"` → `0xCBF43926` is pinned in the tests.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_table();

/// CRC32 of `bytes` under the IEEE polynomial.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"iolap segment payload");
        let mut flipped = b"iolap segment payload".to_vec();
        for i in 0..flipped.len() {
            flipped[i] ^= 1;
            assert_ne!(crc32(&flipped), base, "flip at byte {i} undetected");
            flipped[i] ^= 1;
        }
    }
}
