//! Append-only CRC-framed segments.
//!
//! On-disk layout:
//!
//! ```text
//! [ 8B magic "IOLAPSEG" ][ 4B version (LE) ]      -- segment header
//! [ 4B len (LE) ][ 4B crc32 (LE) ][ len bytes ]   -- frame, repeated
//! ```
//!
//! The reader accepts the longest prefix of well-formed frames and stops at
//! the first frame whose length runs past the file or whose CRC disagrees
//! with its payload — that is a *torn tail*, reported via
//! [`SegmentScan::truncated`] together with the byte offset of the valid
//! prefix. [`SegmentWriter::resume`] chops the torn tail (`set_len`) before
//! appending, so a crash mid-write costs at most the frame in flight.

use crate::crc::crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

/// Leading magic of every segment file.
pub const MAGIC: &[u8; 8] = b"IOLAPSEG";
/// On-disk format version; bumped on any incompatible layout change.
pub const VERSION: u32 = 1;
/// Bytes before the first frame: magic plus version.
pub const SEGMENT_HEADER_LEN: u64 = 12;
/// Bytes of framing before each payload: length plus CRC.
pub const FRAME_HEADER_LEN: u64 = 8;

/// Largest frame the reader will attempt to materialise. A corrupt length
/// field must not translate into an allocation of that bogus size; anything
/// past this bound is treated as a torn tail.
const MAX_FRAME_LEN: usize = 1 << 30;

/// Result of scanning a segment: the valid frame prefix plus where (and
/// whether) the scan stopped short of the physical file end.
#[derive(Debug)]
pub struct SegmentScan {
    /// Payloads of every well-formed frame, in append order.
    pub frames: Vec<Vec<u8>>,
    /// Byte length of the valid prefix (header plus whole frames). A
    /// resumed writer truncates the file to this length before appending.
    pub valid_len: u64,
    /// True when bytes past `valid_len` exist but do not form a complete,
    /// CRC-clean frame — a torn or truncated tail.
    pub truncated: bool,
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn u32_at(data: &[u8], off: usize) -> Option<u32> {
    let end = off.checked_add(4)?;
    let bytes: [u8; 4] = data.get(off..end)?.try_into().ok()?;
    Some(u32::from_le_bytes(bytes))
}

/// Read a segment, returning every valid frame and the torn-tail verdict.
///
/// A missing file, short header, wrong magic, or wrong version is an
/// error — those are not crash artifacts but absent/foreign files. A torn
/// tail is *not* an error: it is the expected residue of a crash mid-write
/// and is reported through [`SegmentScan`].
pub fn scan_segment(path: &Path) -> io::Result<SegmentScan> {
    let data = fs::read(path)?;
    if data.len() < SEGMENT_HEADER_LEN as usize {
        return Err(bad_data("segment shorter than header"));
    }
    if &data[..8] != MAGIC {
        return Err(bad_data("bad segment magic"));
    }
    match u32_at(&data, 8) {
        Some(v) if v == VERSION => {}
        _ => return Err(bad_data("unsupported segment version")),
    }

    let mut frames = Vec::new();
    let mut off = SEGMENT_HEADER_LEN as usize;
    let mut truncated = false;
    loop {
        if off == data.len() {
            break;
        }
        let (len, crc) = match (u32_at(&data, off), u32_at(&data, off + 4)) {
            (Some(len), Some(crc)) => (len as usize, crc),
            _ => {
                truncated = true;
                break;
            }
        };
        let start = off + FRAME_HEADER_LEN as usize;
        let end = match start.checked_add(len) {
            Some(end) if len <= MAX_FRAME_LEN && end <= data.len() => end,
            _ => {
                truncated = true;
                break;
            }
        };
        let payload = &data[start..end];
        if crc32(payload) != crc {
            truncated = true;
            break;
        }
        frames.push(payload.to_vec());
        off = end;
    }
    Ok(SegmentScan {
        frames,
        valid_len: off as u64,
        truncated,
    })
}

/// Chop the last `bytes` bytes off a file, returning its new length.
///
/// This is a fault-injection helper (the `truncated_segment` fault kind
/// simulates a filesystem losing the tail of a flushed segment); recovery
/// code never calls it directly — `resume` only ever truncates to a
/// CRC-verified prefix.
pub fn truncate_tail(path: &Path, bytes: u64) -> io::Result<u64> {
    let file = OpenOptions::new().write(true).open(path)?;
    let len = file.metadata()?.len();
    let new_len = len.saturating_sub(bytes);
    file.set_len(new_len)?;
    file.sync_data()?;
    Ok(new_len)
}

/// Appending writer over a segment file.
///
/// With `fsync` enabled every append is followed by `sync_data`, making
/// each frame durable before the writer returns; with it disabled frames
/// sit in OS caches (faster, weaker guarantee — the `durability` sweep
/// measures the gap). Either way the *framing* guarantees a reader sees a
/// clean prefix.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    len: u64,
    fsync: bool,
}

impl SegmentWriter {
    /// Create (or overwrite) a segment at `path` and write its header.
    pub fn create(path: &Path, fsync: bool) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        if fsync {
            file.sync_data()?;
        }
        Ok(SegmentWriter {
            file,
            len: SEGMENT_HEADER_LEN,
            fsync,
        })
    }

    /// Reopen an existing segment for appending: scan it, truncate any torn
    /// tail to the valid prefix, and seek to the end. Returns the writer
    /// together with the scan so callers replay the surviving frames.
    pub fn resume(path: &Path, fsync: bool) -> io::Result<(Self, SegmentScan)> {
        let scan = scan_segment(path)?;
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(scan.valid_len)?;
        file.seek(SeekFrom::End(0))?;
        let writer = SegmentWriter {
            file,
            len: scan.valid_len,
            fsync,
        };
        Ok((writer, scan))
    }

    /// Append one framed payload; with fsync on, durable on return.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let frame = encode_frame(payload)?;
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Fault-injection helper: write only the leading `fraction` of the
    /// encoded frame — a torn write, as when power fails mid-`write`.
    ///
    /// The writer stays usable, but anything appended after the tear lands
    /// *behind* a malformed frame and is unreachable to [`scan_segment`]
    /// (the scan stops at the tear). That models the crash faithfully:
    /// everything from the torn frame onward is lost to recovery.
    pub fn append_partial(&mut self, payload: &[u8], fraction: f64) -> io::Result<()> {
        let frame = encode_frame(payload)?;
        let cut = ((frame.len() as f64) * fraction.clamp(0.0, 1.0)) as usize;
        // A zero-length cut would be a no-op (not torn at all) and a
        // full-length cut a clean frame; pin strictly inside.
        let cut = cut.clamp(1, frame.len().saturating_sub(1));
        self.file.write_all(&frame[..cut])?;
        self.file.sync_data()?;
        self.len += cut as u64;
        Ok(())
    }

    /// Flush OS caches to stable storage regardless of the fsync mode.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Current byte length of the segment (header plus appended frames).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the segment holds no frames yet.
    pub fn is_empty(&self) -> bool {
        self.len == SEGMENT_HEADER_LEN
    }
}

fn encode_frame(payload: &[u8]) -> io::Result<Vec<u8>> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(bad_data("frame payload exceeds maximum length"));
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN as usize + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static SCRATCH: AtomicUsize = AtomicUsize::new(0);

    fn scratch(name: &str) -> PathBuf {
        let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("iolap-store-{}-{n}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_preserves_frames() {
        let dir = scratch("roundtrip");
        let path = dir.join("a.seg");
        let mut w = SegmentWriter::create(&path, false).unwrap();
        assert!(w.is_empty());
        w.append(b"alpha").unwrap();
        w.append(b"").unwrap();
        w.append(&[0u8; 300]).unwrap();
        drop(w);
        let scan = scan_segment(&path).unwrap();
        assert!(!scan.truncated);
        assert_eq!(scan.frames, vec![b"alpha".to_vec(), vec![], vec![0u8; 300]]);
        assert_eq!(
            scan.valid_len,
            SEGMENT_HEADER_LEN + 3 * FRAME_HEADER_LEN + 5 + 300
        );
    }

    #[test]
    fn torn_write_yields_valid_prefix() {
        let dir = scratch("torn");
        let path = dir.join("a.seg");
        let mut w = SegmentWriter::create(&path, true).unwrap();
        w.append(b"kept").unwrap();
        let before = w.len();
        w.append_partial(b"torn away by the crash", 0.5).unwrap();
        // Frames appended after the tear are behind a malformed frame and
        // therefore invisible to the scan — the crash loses the whole tail.
        w.append(b"unreachable").unwrap();
        drop(w);
        let scan = scan_segment(&path).unwrap();
        assert!(scan.truncated);
        assert_eq!(scan.frames, vec![b"kept".to_vec()]);
        assert_eq!(scan.valid_len, before);
    }

    #[test]
    fn resume_chops_torn_tail_and_appends() {
        let dir = scratch("resume");
        let path = dir.join("a.seg");
        let mut w = SegmentWriter::create(&path, false).unwrap();
        w.append(b"one").unwrap();
        w.append_partial(b"half-written", 0.4).unwrap();
        let (mut w, scan) = SegmentWriter::resume(&path, false).unwrap();
        assert!(scan.truncated);
        assert_eq!(scan.frames, vec![b"one".to_vec()]);
        w.append(b"two").unwrap();
        drop(w);
        let scan = scan_segment(&path).unwrap();
        assert!(!scan.truncated);
        assert_eq!(scan.frames, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn truncate_tail_loses_whole_frames() {
        let dir = scratch("chop");
        let path = dir.join("a.seg");
        let mut w = SegmentWriter::create(&path, false).unwrap();
        w.append(b"first").unwrap();
        w.append(b"second").unwrap();
        drop(w);
        // Chop into the middle of the second frame.
        truncate_tail(&path, 3).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert!(scan.truncated);
        assert_eq!(scan.frames, vec![b"first".to_vec()]);
        // Resume after the chop behaves exactly like resume after a torn
        // write: valid prefix survives, new frames append cleanly.
        let (mut w, _) = SegmentWriter::resume(&path, false).unwrap();
        w.append(b"third").unwrap();
        drop(w);
        let scan = scan_segment(&path).unwrap();
        assert!(!scan.truncated);
        assert_eq!(scan.frames, vec![b"first".to_vec(), b"third".to_vec()]);
    }

    #[test]
    fn corrupt_crc_stops_the_scan() {
        let dir = scratch("crc");
        let path = dir.join("a.seg");
        let mut w = SegmentWriter::create(&path, false).unwrap();
        w.append(b"good").unwrap();
        w.append(b"soon bad").unwrap();
        drop(w);
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        crate::write_artifact(&path, &data).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert!(scan.truncated);
        assert_eq!(scan.frames, vec![b"good".to_vec()]);
    }

    #[test]
    fn foreign_and_short_files_are_errors() {
        let dir = scratch("foreign");
        let path = dir.join("a.seg");
        crate::write_artifact(&path, b"not a segment at all").unwrap();
        assert!(scan_segment(&path).is_err());
        crate::write_artifact(&path, b"IOLAP").unwrap();
        assert!(scan_segment(&path).is_err());
        // Wrong version.
        let mut bad = MAGIC.to_vec();
        bad.extend_from_slice(&(VERSION + 1).to_le_bytes());
        crate::write_artifact(&path, &bad).unwrap();
        assert!(scan_segment(&path).is_err());
    }

    #[test]
    fn corrupt_length_field_does_not_allocate() {
        let dir = scratch("len");
        let path = dir.join("a.seg");
        let mut w = SegmentWriter::create(&path, false).unwrap();
        w.append(b"ok").unwrap();
        drop(w);
        let mut data = std::fs::read(&path).unwrap();
        // Append a frame header claiming ~4 GiB of payload.
        data.extend_from_slice(&u32::MAX.to_le_bytes());
        data.extend_from_slice(&0u32.to_le_bytes());
        crate::write_artifact(&path, &data).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert!(scan.truncated);
        assert_eq!(scan.frames, vec![b"ok".to_vec()]);
    }
}
