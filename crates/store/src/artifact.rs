//! Atomic whole-file artifacts: temp-file + rename.
//!
//! Bench JSON, golden files, and other small whole-file outputs are not
//! append logs — they are replaced wholesale. Writing them in place risks
//! a reader (or a crash) observing a half-written copy; writing a sibling
//! temp file and renaming it over the target is atomic on POSIX
//! filesystems, so observers see either the old artifact or the new one.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Create `dir` (and parents) if missing. Centralised here so directory
/// creation on the persistence path stays inside the store crate (L012).
pub fn ensure_dir(dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)
}

/// Atomically replace the file at `path` with `bytes`.
///
/// The temp sibling lives in the same directory (rename across mount
/// points is not atomic) and carries the process id so concurrent writers
/// of *different* artifacts never collide; last rename wins for the same
/// artifact, which is the usual overwrite semantics.
pub fn write_artifact(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "artifact path has no file name",
        )
    })?;
    let mut tmp = dir.join(name);
    tmp.set_extension(format!("tmp.{}", std::process::id()));
    {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_data()?;
    }
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Leave no temp litter behind a failed rename; the original
            // error is the one worth reporting.
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static SCRATCH: AtomicUsize = AtomicUsize::new(0);

    fn scratch(name: &str) -> PathBuf {
        let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("iolap-artifact-{}-{n}-{name}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_overwrites() {
        let dir = scratch("overwrite");
        let path = dir.join("bench.json");
        write_artifact(&path, b"v1").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"v1");
        write_artifact(&path, b"v2 is longer").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"v2 is longer");
        // No temp litter left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name() != "bench.json")
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn ensure_dir_is_idempotent() {
        let dir = scratch("ensure").join("a/b/c");
        ensure_dir(&dir).unwrap();
        ensure_dir(&dir).unwrap();
        assert!(dir.is_dir());
    }

    #[test]
    fn rejects_bare_root_path() {
        assert!(write_artifact(Path::new("/"), b"x").is_err());
    }
}
