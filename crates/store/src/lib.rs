//! Durable storage for the iOLAP engine: CRC-framed append segments,
//! crash-tolerant scans, and atomic whole-file artifacts.
//!
//! The engine's recovery story (§5.1 of the paper, PR 3's checkpoint
//! digests) is entirely logical: a checkpoint is *valid* iff its digest
//! matches a deterministic re-derivation of driver state. This crate adds
//! the physical half — a place for those checkpoints, published reports,
//! and session manifests to survive a process crash — without changing
//! the logical contract:
//!
//! * A **segment** is an append-only file of length-prefixed, CRC32-framed
//!   records behind a fixed magic/version header. Readers accept the
//!   longest valid prefix and report (not fail on) a torn tail, so a crash
//!   mid-write costs at most the frame being written.
//! * A **writer** can `create` a fresh segment or `resume` an existing
//!   one, chopping any torn tail before appending. Appends optionally
//!   fsync per frame for crash consistency at a measured cost (the
//!   `durability` bench sweep records the overhead).
//! * An **artifact** is a small whole file (bench JSON, goldens) written
//!   via temp-file + rename so readers never observe a half-written copy.
//!
//! Everything in the workspace that persists state routes through this
//! crate; lint L012 rejects raw `std::fs::write` / `File::create` /
//! `OpenOptions` use on the persistence path anywhere else.
//!
//! The crate has zero dependencies and its non-test code is panic-free:
//! every fallible operation returns `io::Result`, and corrupt input is
//! data (a shorter valid prefix), never a crash.

#![forbid(unsafe_code)]

mod artifact;
mod crc;
mod segment;

pub use artifact::{ensure_dir, write_artifact};
pub use crc::crc32;
pub use segment::{
    scan_segment, truncate_tail, SegmentScan, SegmentWriter, FRAME_HEADER_LEN, MAGIC,
    SEGMENT_HEADER_LEN, VERSION,
};
