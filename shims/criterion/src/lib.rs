//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] tuning knobs,
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is simple
//! wall-clock sampling: each benchmark is warmed up, then timed for
//! `sample_size` samples, and a median per-iteration time is printed.
//! There is no statistical analysis, HTML report, or baseline comparison.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Measurement backends, mirroring `criterion::measurement`.
pub mod measurement {
    /// Wall-clock measurement (the only backend this shim provides).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Names a parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Passed to each benchmark closure; drives the timing loop.
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    /// Median per-iteration time, filled in by [`Bencher::iter`].
    result: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~1/samples of the budget?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement_time / self.samples.max(1) as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            times.push(start.elapsed() / iters as u32);
        }
        times.sort_unstable();
        self.result = Some(times[times.len() / 2]);
    }
}

/// A named group of benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Untimed warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if let Some(filter) = &self.criterion.filter {
            let full = format!("{}/{}", self.group_name, id);
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            result: None,
        };
        // Warm-up: run the routine until the warm-up budget elapses. The
        // closure owns the routine, so just invoke it once with a tiny
        // sample budget first.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm = Bencher {
            samples: 1,
            measurement_time: Duration::from_millis(1),
            result: None,
        };
        while Instant::now() < warm_deadline {
            f(&mut warm);
        }
        f(&mut b);
        match b.result {
            Some(t) => println!(
                "{:<50} {:>12.3} µs/iter",
                format!("{}/{}", self.group_name, id),
                t.as_secs_f64() * 1e6
            ),
            None => println!(
                "{:<50} (no measurement: Bencher::iter never called)",
                format!("{}/{}", self.group_name, id)
            ),
        }
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Benchmark a closure with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Match cargo-bench conventions loosely: a positional arg filters
        // benchmark names; `--bench` etc. are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            group_name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
            criterion: self,
            _marker: std::marker::PhantomData,
        }
    }

    /// Called by `criterion_group!`'s generated runner.
    pub fn final_summary(&self) {}
}

/// Collect benchmark functions into a named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1))
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("zzz_never".into()),
        };
        let mut g = c.benchmark_group("t");
        let mut ran = false;
        g.bench_function("noop", |_b| ran = true);
        assert!(!ran);
    }
}
