//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this shim provides the
//! subset of proptest the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_recursive`, range and regex-literal
//! strategies, tuples, [`collection::vec`], `Just`, `any`, weighted unions,
//! and the `proptest!` / `prop_oneof!` / `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   printed; reproduce it by re-running (generation is deterministic per
//!   test name and case index).
//! * **Regex strategies** support the subset the tests use: literal chars,
//!   `.`, `[...]` classes with ranges, and the `*`, `+`, `?`, `{m}`,
//!   `{m,n}` quantifiers.
//! * `PROPTEST_CASES` overrides the per-test case count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Deterministic per-(test, case) generator.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ 0x5052_4f50)
}

/// Error returned by a failing property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with a reason.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
    /// Alias kept for API parity with real proptest.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility with upstream configs; this shim
    /// does not shrink failing inputs.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 48,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Cases to run, honouring the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Build a recursive strategy: `self` is the leaf; `f` lifts a strategy
    /// for depth-`d` values into one for depth-`d+1` values.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = BoxedStrategy::new(self);
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let rec = BoxedStrategy::new(f(cur));
            cur = BoxedStrategy::new(Union::weighted(vec![(1, leaf.clone()), (2, rec)]));
        }
        cur
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> BoxedStrategy<T> {
    /// Erase `s`.
    pub fn new(s: impl Strategy<Value = T> + 'static) -> Self {
        BoxedStrategy(Rc::new(s))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: self.f.clone(),
        }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between strategies of the same value type.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Uniform union.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted union.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum::<u32>().max(1);
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        self.arms.last().unwrap().1.generate(rng)
    }
}

// --- numeric range strategies ---------------------------------------------

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

// --- any::<T>() ------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.gen::<f64>() * 1e12;
        if rng.gen::<u64>() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for ArbitraryStrategy<T> {
    fn clone(&self) -> Self {
        ArbitraryStrategy(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Full-range strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

// --- regex-literal string strategies --------------------------------------

#[derive(Clone, Debug)]
enum RegexAtom {
    Any,
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Clone, Debug)]
struct RegexPiece {
    atom: RegexAtom,
    min: u32,
    max: u32,
}

fn parse_regex(pattern: &str) -> Vec<RegexPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces: Vec<RegexPiece> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                RegexAtom::Any
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        set.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        set.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated [...] in regex strategy");
                i += 1; // ']'
                RegexAtom::Class(set)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in regex strategy");
                let c = chars[i];
                i += 1;
                RegexAtom::Literal(c)
            }
            c => {
                i += 1;
                RegexAtom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated {m,n} in regex strategy")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad {m,n}"),
                            n.trim().parse().expect("bad {m,n}"),
                        ),
                        None => {
                            let n: u32 = body.trim().parse().expect("bad {n}");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(RegexPiece { atom, min, max });
    }
    pieces
}

fn gen_any_char(rng: &mut TestRng) -> char {
    match rng.gen_range(0..20u32) {
        0 => '\n',
        1 => '\t',
        2 => char::from_u32(rng.gen_range(0..32u32)).unwrap_or('\u{1}'),
        3 => ['λ', '中', '𝕏', 'é', '🦀', '\u{7f}'][rng.gen_range(0..6usize)],
        _ => char::from_u32(rng.gen_range(0x20..0x7f_u32)).unwrap(),
    }
}

/// String literals are regex strategies (`"[a-z]{1,3}"` generates matching
/// strings).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_regex(self);
        let mut out = String::new();
        for p in &pieces {
            let n = if p.min == p.max {
                p.min
            } else {
                rng.gen_range(p.min..=p.max)
            };
            for _ in 0..n {
                match &p.atom {
                    RegexAtom::Any => out.push(gen_any_char(rng)),
                    RegexAtom::Literal(c) => out.push(*c),
                    RegexAtom::Class(set) => {
                        let (lo, hi) = set[rng.gen_range(0..set.len())];
                        let c = char::from_u32(rng.gen_range(lo as u32..=hi as u32)).unwrap_or(lo);
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

// --- collections -----------------------------------------------------------

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Acceptable length specifications for [`vec`].
    pub trait IntoLenRange {
        /// Inclusive bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoLenRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoLenRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                min: self.min,
                max: self.max,
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.min == self.max {
                self.min
            } else {
                rng.gen_range(self.min..=self.max)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        VecStrategy { element, min, max }
    }
}

// --- macros ----------------------------------------------------------------

/// Choose between strategies (uniformly; weights are accepted and used).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $(($weight as u32, $crate::BoxedStrategy::new($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::BoxedStrategy::new($arm)),+
        ])
    };
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Define property tests. Each test body runs `config.cases` times with
/// freshly generated inputs; a failing case panics with the inputs printed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                $(let __strat_of = &($strat);
                  let $arg = __strat_of; )+
                for __case in 0..cases {
                    let mut __rng = $crate::test_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate($arg, &mut __rng);)+
                    let __inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}\ninputs:\n{}",
                            stringify!($name),
                            __case,
                            cases,
                            e,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// The `proptest::prelude` the tests glob-import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };

    /// `prop::…` namespace (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_identifier_shape() {
        let strat = "[a-zA-Z_][a-zA-Z0-9_]{0,20}";
        let mut rng = crate::test_rng("regex_identifier_shape", 0);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&strat, &mut rng);
            assert!(!s.is_empty() && s.len() <= 21, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_', "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{s:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(
            x in 0i64..100,
            pair in (0usize..5, -1.0f64..1.0),
            v in prop::collection::vec(0u8..3, 0..10),
            b in any::<bool>(),
        ) {
            prop_assert!((0..100).contains(&x));
            prop_assert!(pair.0 < 5);
            prop_assert!(pair.1 >= -1.0 && pair.1 < 1.0);
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 3));
            let _ = b;
        }

        #[test]
        fn oneof_and_map(
            s in prop_oneof![Just("a"), Just("b")],
            mapped in (0i64..10).prop_map(|x| x * 2),
        ) {
            prop_assert!(s == "a" || s == "b");
            prop_assert!(mapped % 2 == 0 && (0..20).contains(&mapped));
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
        }
    }

    proptest! {
        #[test]
        fn recursive_strategies_bound_depth(
            t in (0i64..10).prop_map(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner)
                    .prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            })
        ) {
            prop_assert!(depth(&t) <= 3, "depth {} for {:?}", depth(&t), t);
        }
    }
}
