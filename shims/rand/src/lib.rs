//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace replaces `rand` with this shim, which implements exactly the
//! API subset the workspace uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], [`Rng::gen`] / [`Rng::gen_range`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++, seeded via
//! splitmix64 — deterministic per seed, which is all the workspace relies on
//! (nothing here depends on matching upstream `rand`'s exact streams).

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Core entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types [`Rng::gen_range`] can draw uniformly. The impls for the range
/// shapes below are generic over this trait (matching upstream `rand`'s
/// structure) so that type inference flows from how the result is used —
/// e.g. `slice[rng.gen_range(0..2)]` infers `usize`.
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing generator methods.
pub trait Rng: RngCore {
    /// Draw a value of type `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Draw a boolean that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; same trait surface, different stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in s.iter_mut() {
                *slot = super::splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5);
            assert!((0..=5).contains(&y));
            let f = rng.gen_range(1e-12..1.0f64);
            assert!((1e-12..1.0).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
